"""Event-driven contact intervals: analytic (rise, set) windows.

The grid engine answers every coverage question by sampling visibility on a
dense time grid — O(sites x sats x samples) regardless of how sparse the
contacts actually are.  This module refactors that to the event
representation the paper's MP-LEO market reasons about: per (site,
satellite) *contact windows* ``[rise_s, set_s)`` found analytically.

The finder works in two stages (the classic ``get_overpasses`` idiom):

1. **Coarse scan** — stream the exact same boolean visibility slabs the
   grid engine uses (:func:`repro.sim.kernels.plan_stream` /
   :func:`~repro.sim.kernels.iter_slabs`) and record every sign change of
   ``dot(unit_site, unit_sat) - cos_threshold`` between consecutive
   samples.  Because the scan *is* the grid kernel, a pass is detected iff
   the grid detects it, and resampling the refined intervals back onto the
   scan grid reproduces the grid masks bit-for-bit.
2. **Edge refinement** — each detected transition brackets a root of the
   continuous elevation function in ``(t_{k-1}, t_k]``.  A clamped,
   vectorized bisection on the exact topocentric geometry
   (:meth:`BatchPropagator.unit_positions_at` against the rotating site
   direction) narrows every bracket to ``tolerance_s`` at once.  The
   refined edge is taken from the *new-state* side of the bracket, so the
   resampling identity above survives refinement exactly.

On top of the windows sits an interval algebra (:class:`IntervalSet`:
union / intersect / complement, coverage fraction, gap list) and grouped
event-sweep reductions (:class:`ContactIntervals`: per-site coverage
fractions, per-satellite active fractions, k-coverage) that reproduce
every reduction the grid engine offers — with error bounded by one coarse
step per contact edge instead of one step per *sample*.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics
from repro.obs.trace import span
from repro.orbits.frames import gmst_rad
from repro.ground.sites import GroundSite
from repro.orbits.propagator import BatchPropagator
from repro.sim import backends, kernels
from repro.sim.clock import TimeGrid

#: Default width to which each rise/set edge is narrowed (seconds).
DEFAULT_EDGE_TOLERANCE_S = 1e-2

#: Edges refined per bisection batch; bounds the temporary (K,) arrays.
REFINE_BATCH = 1 << 17

_CONTACTS_FOUND = metrics.counter("sim.intervals.contacts")
_EDGES_REFINED = metrics.counter("sim.intervals.refined_edges")
_SCAN_TRANSITIONS = metrics.counter("sim.intervals.scan_transitions")


def _as_float_array(values) -> np.ndarray:
    return np.atleast_1d(np.asarray(values, dtype=np.float64))


class IntervalSet:
    """A normalized set of half-open intervals over a fixed horizon.

    Intervals are ``[start, stop)`` within ``[start_s, end_s)``.  The
    constructor normalizes: clips to the horizon, drops zero-length
    intervals, sorts, and merges overlapping *and touching* intervals, so
    ``starts``/``stops`` are always strictly interleaved
    (``starts[i] < stops[i] < starts[i+1]``).
    """

    __slots__ = ("starts", "stops", "start_s", "end_s")

    def __init__(self, starts, stops, start_s: float, end_s: float) -> None:
        if end_s < start_s:
            raise ValueError("horizon end precedes start")
        self.start_s = float(start_s)
        self.end_s = float(end_s)
        starts = _as_float_array(starts)
        stops = _as_float_array(stops)
        if starts.shape != stops.shape:
            raise ValueError("starts and stops must have the same shape")
        starts = np.clip(starts, self.start_s, self.end_s)
        stops = np.clip(stops, self.start_s, self.end_s)
        keep = stops > starts
        starts = starts[keep]
        stops = stops[keep]
        if starts.size:
            order = np.argsort(starts, kind="stable")
            starts = starts[order]
            stops = stops[order]
            reach = np.maximum.accumulate(stops)
            # A new merged run begins where the next start lies strictly
            # beyond everything seen so far; equality (touching) merges.
            new_run = np.empty(starts.size, dtype=bool)
            new_run[0] = True
            new_run[1:] = starts[1:] > reach[:-1]
            heads = np.flatnonzero(new_run)
            tails = np.append(heads[1:] - 1, starts.size - 1)
            starts = starts[heads]
            stops = reach[tails]
        self.starts = starts
        self.stops = stops

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls, start_s: float, end_s: float) -> "IntervalSet":
        return cls(np.empty(0), np.empty(0), start_s, end_s)

    @classmethod
    def full(cls, start_s: float, end_s: float) -> "IntervalSet":
        return cls(np.array([start_s]), np.array([end_s]), start_s, end_s)

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Tuple[float, float]], start_s: float, end_s: float
    ) -> "IntervalSet":
        if not len(pairs):
            return cls.empty(start_s, end_s)
        arr = np.asarray(pairs, dtype=np.float64).reshape(-1, 2)
        return cls(arr[:, 0], arr[:, 1], start_s, end_s)

    # -- basic properties -------------------------------------------------

    @property
    def count(self) -> int:
        return int(self.starts.size)

    @property
    def span_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def total_s(self) -> float:
        """Total covered seconds."""
        return float((self.stops - self.starts).sum())

    @property
    def coverage_fraction(self) -> float:
        if self.span_s == 0.0:
            return 0.0
        return self.total_s / self.span_s

    def durations_s(self) -> np.ndarray:
        return self.stops - self.starts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return (
            self.start_s == other.start_s
            and self.end_s == other.end_s
            and np.array_equal(self.starts, other.starts)
            and np.array_equal(self.stops, other.stops)
        )

    def __hash__(self) -> int:  # pragma: no cover - sets are not hashed
        return id(self)

    def __repr__(self) -> str:
        return (
            f"IntervalSet({self.count} intervals, "
            f"{self.total_s:.1f}s of [{self.start_s}, {self.end_s}))"
        )

    def _require_same_horizon(self, other: "IntervalSet") -> None:
        if (self.start_s, self.end_s) != (other.start_s, other.end_s):
            raise ValueError("interval sets span different horizons")

    # -- algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        self._require_same_horizon(other)
        return IntervalSet(
            np.concatenate([self.starts, other.starts]),
            np.concatenate([self.stops, other.stops]),
            self.start_s,
            self.end_s,
        )

    def complement(self) -> "IntervalSet":
        """Uncovered time over the horizon (includes boundary gaps)."""
        return IntervalSet(
            np.concatenate([[self.start_s], self.stops]),
            np.concatenate([self.starts, [self.end_s]]),
            self.start_s,
            self.end_s,
        )

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        # De Morgan: endpoints all come from the operands or the horizon
        # bounds, so the result is exact (no float arithmetic on times).
        self._require_same_horizon(other)
        return self.complement().union(other.complement()).complement()

    def gaps(self) -> "IntervalSet":
        """Alias of :meth:`complement`, matching grid gap semantics
        (runs of uncovered samples at the horizon edges count as gaps)."""
        return self.complement()

    def gap_lengths_s(self) -> np.ndarray:
        return self.complement().durations_s()

    # -- sampling ---------------------------------------------------------

    def sample(self, times_s) -> np.ndarray:
        """Boolean membership of each time: ``starts <= t < stops``."""
        times = np.asarray(times_s, dtype=np.float64)
        idx = np.searchsorted(self.starts, times, side="right") - 1
        out = np.zeros(times.shape, dtype=bool)
        valid = idx >= 0
        out[valid] = times[valid] < self.stops[idx[valid]]
        return out


def grouped_union_seconds(
    starts: np.ndarray,
    stops: np.ndarray,
    groups: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Union measure per group via an exact +1/-1 event sweep.

    Intervals need not be sorted or disjoint within a group.  The sweep
    sorts events by (group, time), takes one global cumulative sum of the
    deltas — each group's deltas sum to zero, so the count never carries
    across group boundaries — and accumulates inter-event spans where the
    running count is positive.  All arithmetic is on the original float64
    endpoints; no coordinate shifting, so no precision loss at scale.
    """
    k = int(starts.size)
    if k == 0:
        return np.zeros(n_groups, dtype=np.float64)
    times = np.concatenate([starts, stops])
    deltas = np.concatenate(
        [np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64)]
    )
    both = np.concatenate([groups, groups])
    order = np.lexsort((deltas, times, both))
    # The sort stays here (one fixed tie order for every backend); only
    # the accumulation over the sorted stream is backend-routed.  Every
    # backend adds the same float64 spans in the same array order as
    # np.bincount's weighted pass, so the sweep is bit-identical.
    return backends.default_backend().sweep_accumulate(
        times[order], deltas[order], both[order], n_groups
    )


def sweep_count_steps(
    starts: np.ndarray, stops: np.ndarray, start_s: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Step function of overlapping-interval counts.

    Returns ``(times, counts)`` where ``counts[i]`` holds on
    ``[times[i], times[i+1])`` (and from ``times[-1]`` onward), with
    ``times[0] == start_s``.
    """
    k = int(starts.size)
    if k == 0:
        return np.array([start_s]), np.zeros(1, dtype=np.int64)
    times = np.concatenate([starts, stops])
    deltas = np.concatenate(
        [np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64)]
    )
    order = np.lexsort((deltas, times))
    times = times[order]
    counts = np.cumsum(deltas[order])
    keep = np.empty(times.size, dtype=bool)
    keep[:-1] = times[1:] != times[:-1]
    keep[-1] = True
    times = times[keep]
    counts = counts[keep]
    if times[0] > start_s:
        times = np.concatenate([[start_s], times])
        counts = np.concatenate([[0], counts])
    return times, counts


class ContactIntervals:
    """CSR-packed contact windows for every (site, satellite) pair.

    Pair ``(s, n)`` owns the slice
    ``pair_offsets[s * n_satellites + n] : pair_offsets[... + 1]`` of the
    flat ``rise_s`` / ``set_s`` arrays (sorted by rise within each pair).
    ``truncated_start`` / ``truncated_end`` flag windows clipped by the
    horizon rather than closed by a real elevation crossing.

    ``segment`` is set when the CSR arrays are views into a
    ``multiprocessing.shared_memory`` segment this object's owning context
    holds (see :func:`repro.runner.shared.ensure_shared_intervals`); it is
    process-local state and never pickles.
    """

    __slots__ = (
        "n_sites",
        "n_satellites",
        "start_s",
        "end_s",
        "rise_s",
        "set_s",
        "truncated_start",
        "truncated_end",
        "pair_offsets",
        "segment",
    )

    def __init__(
        self,
        n_sites: int,
        n_satellites: int,
        start_s: float,
        end_s: float,
        rise_s: np.ndarray,
        set_s: np.ndarray,
        truncated_start: np.ndarray,
        truncated_end: np.ndarray,
        pair_offsets: np.ndarray,
    ) -> None:
        self.n_sites = int(n_sites)
        self.n_satellites = int(n_satellites)
        self.start_s = float(start_s)
        self.end_s = float(end_s)
        self.rise_s = rise_s
        self.set_s = set_s
        self.truncated_start = truncated_start
        self.truncated_end = truncated_end
        self.pair_offsets = pair_offsets
        self.segment = None
        expected = self.n_sites * self.n_satellites + 1
        if pair_offsets.shape != (expected,):
            raise ValueError("pair_offsets length must be n_sites*n_sats + 1")

    def __getstate__(self):
        # Shared-memory segments are process-local handles; the pickle-copy
        # fallback of the parallel runner ships the arrays by value instead.
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "segment"
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self.segment = None

    @property
    def n_contacts(self) -> int:
        return int(self.rise_s.size)

    @property
    def span_s(self) -> float:
        return self.end_s - self.start_s

    def nbytes(self) -> int:
        """Resident payload size (the figure reported by benchmarks)."""
        return int(
            self.rise_s.nbytes
            + self.set_s.nbytes
            + self.truncated_start.nbytes
            + self.truncated_end.nbytes
            + self.pair_offsets.nbytes
        )

    # -- index helpers ----------------------------------------------------

    def _sat_array(self, sat_indices) -> np.ndarray:
        if sat_indices is None:
            return np.arange(self.n_satellites, dtype=np.intp)
        return np.asarray(sat_indices, dtype=np.intp).reshape(-1)

    def _site_array(self, site_indices) -> np.ndarray:
        if site_indices is None:
            return np.arange(self.n_sites, dtype=np.intp)
        return np.asarray(site_indices, dtype=np.intp).reshape(-1)

    def _pair_slice(self, site_index: int, sat_index: int) -> slice:
        p = int(site_index) * self.n_satellites + int(sat_index)
        return slice(int(self.pair_offsets[p]), int(self.pair_offsets[p + 1]))

    def _gather(self, pair_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """CSR multi-row gather.

        Returns ``(flat, rows)``: indices into the interval arrays for all
        windows of the requested pairs, plus the row (position within
        ``pair_ids``) each window came from.
        """
        first = self.pair_offsets[pair_ids]
        counts = self.pair_offsets[pair_ids + 1] - first
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        rows = np.repeat(np.arange(pair_ids.size, dtype=np.intp), counts)
        cum = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.intp) - np.repeat(cum, counts)
        flat = np.repeat(first, counts) + within
        return flat, rows

    # -- per-pair views ---------------------------------------------------

    def pair(self, site_index: int, sat_index: int) -> IntervalSet:
        sl = self._pair_slice(site_index, sat_index)
        return IntervalSet(
            self.rise_s[sl], self.set_s[sl], self.start_s, self.end_s
        )

    def pair_count(self, site_index: int, sat_index: int) -> int:
        sl = self._pair_slice(site_index, sat_index)
        return sl.stop - sl.start

    def pair_truncation(
        self, site_index: int, sat_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        sl = self._pair_slice(site_index, sat_index)
        return self.truncated_start[sl], self.truncated_end[sl]

    def pair_windows(
        self, site_index: int, sat_index: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Raw (rise, set, truncated_start, truncated_end) arrays, aligned.

        Unlike :meth:`pair`, which normalizes into an :class:`IntervalSet`,
        this preserves window order so truncation flags stay aligned with
        their windows.
        """
        sl = self._pair_slice(site_index, sat_index)
        return (
            self.rise_s[sl],
            self.set_s[sl],
            self.truncated_start[sl],
            self.truncated_end[sl],
        )

    # -- grid-parity reductions -------------------------------------------

    def contact_count(self, site_indices=None, sat_indices=None) -> int:
        sites = self._site_array(site_indices)
        sats = self._sat_array(sat_indices)
        if sites.size == 0 or sats.size == 0:
            return 0
        pair_ids = (sites[:, None] * self.n_satellites + sats[None, :]).ravel()
        counts = self.pair_offsets[pair_ids + 1] - self.pair_offsets[pair_ids]
        return int(counts.sum())

    def site_union(self, site_index: int, sat_indices=None) -> IntervalSet:
        """Coverage of one site by a satellite subset (grid ``site_mask``)."""
        sats = self._sat_array(sat_indices)
        if sats.size == 0:
            return IntervalSet.empty(self.start_s, self.end_s)
        pair_ids = int(site_index) * self.n_satellites + sats
        flat, _ = self._gather(pair_ids)
        return IntervalSet(
            self.rise_s[flat], self.set_s[flat], self.start_s, self.end_s
        )

    def satellite_union(self, sat_index: int, site_indices=None) -> IntervalSet:
        """Time a satellite is busy serving any of the given sites."""
        sites = self._site_array(site_indices)
        if sites.size == 0:
            return IntervalSet.empty(self.start_s, self.end_s)
        pair_ids = sites * self.n_satellites + int(sat_index)
        flat, _ = self._gather(pair_ids)
        return IntervalSet(
            self.rise_s[flat], self.set_s[flat], self.start_s, self.end_s
        )

    def coverage_fractions(self, sat_indices=None) -> np.ndarray:
        """Per-site covered fraction, one grouped sweep for all sites."""
        sats = self._sat_array(sat_indices)
        if sats.size == 0 or self.span_s == 0.0:
            return np.zeros(self.n_sites)
        sites = np.arange(self.n_sites, dtype=np.intp)
        pair_ids = (sites[:, None] * self.n_satellites + sats[None, :]).ravel()
        flat, rows = self._gather(pair_ids)
        groups = rows // sats.size  # row-major: site-major layout
        seconds = grouped_union_seconds(
            self.rise_s[flat], self.set_s[flat], groups, self.n_sites
        )
        return seconds / self.span_s

    def satellite_active_fractions(
        self, sat_indices=None, site_indices=None
    ) -> np.ndarray:
        """Fraction of the horizon each satellite serves >= 1 site."""
        sats = self._sat_array(sat_indices)
        sites = self._site_array(site_indices)
        if sats.size == 0:
            return np.zeros(0)
        if sites.size == 0 or self.span_s == 0.0:
            return np.zeros(sats.size)
        pair_ids = (sites[:, None] * self.n_satellites + sats[None, :]).ravel()
        flat, rows = self._gather(pair_ids)
        groups = rows % sats.size  # satellite position within the subset
        seconds = grouped_union_seconds(
            self.rise_s[flat], self.set_s[flat], groups, sats.size
        )
        return seconds / self.span_s

    def visible_count_steps(
        self, site_index: int, sat_indices=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Step function of simultaneously-visible satellite counts."""
        sats = self._sat_array(sat_indices)
        if sats.size == 0:
            return np.array([self.start_s]), np.zeros(1, dtype=np.int64)
        pair_ids = int(site_index) * self.n_satellites + sats
        flat, _ = self._gather(pair_ids)
        return sweep_count_steps(
            self.rise_s[flat], self.set_s[flat], self.start_s
        )

    def k_coverage_fraction(
        self, site_index: int, k: int, sat_indices=None
    ) -> float:
        """Fraction of the horizon with >= k satellites visible."""
        if self.span_s == 0.0:
            return 0.0
        times, counts = self.visible_count_steps(site_index, sat_indices)
        spans = np.diff(np.concatenate([times, [self.end_s]]))
        return float(spans[counts >= k].sum() / self.span_s)

    def sample_counts(
        self, times_s: np.ndarray, site_index: int, sat_indices=None
    ) -> np.ndarray:
        """Visible-satellite counts at explicit times (grid parity)."""
        times = np.asarray(times_s, dtype=np.float64)
        step_times, counts = self.visible_count_steps(site_index, sat_indices)
        idx = np.searchsorted(step_times, times, side="right") - 1
        return counts[np.maximum(idx, 0)] * (idx >= 0)

    # -- fleet restriction -------------------------------------------------

    def restrict(self, sat_indices) -> "ContactIntervals":
        """A compact copy holding only the given satellite columns.

        The returned object's satellite axis is the *position* within
        ``sat_indices``.  Windows are gathered pair by pair in (site-major,
        given-order) layout with within-pair order preserved, so any
        reduction over the restricted CSR is bit-identical to the same
        reduction over the full CSR with the same satellite list: the
        grouped sweep sees the identical multiset of (group, time, delta)
        events, and events equal on all three sort keys are
        interchangeable.
        """
        sats = self._sat_array(sat_indices)
        sites = np.arange(self.n_sites, dtype=np.intp)
        pair_ids = (sites[:, None] * self.n_satellites + sats[None, :]).ravel()
        flat, _ = self._gather(pair_ids)
        counts = self.pair_offsets[pair_ids + 1] - self.pair_offsets[pair_ids]
        offsets = np.zeros(pair_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return ContactIntervals(
            n_sites=self.n_sites,
            n_satellites=int(sats.size),
            start_s=self.start_s,
            end_s=self.end_s,
            rise_s=np.ascontiguousarray(self.rise_s[flat]),
            set_s=np.ascontiguousarray(self.set_s[flat]),
            truncated_start=np.ascontiguousarray(self.truncated_start[flat]),
            truncated_end=np.ascontiguousarray(self.truncated_end[flat]),
            pair_offsets=offsets,
        )


class IntervalSubsetQuery:
    """Interval-native subset queries over a fleet-restricted CSR.

    The event-sweep twin of
    :class:`repro.sim.kernels.subsets.SubsetQuery`: one
    :meth:`ContactIntervals.restrict` precompute shrinks the window
    structure to the fleet under study, then arbitrary subsets are
    answered by the incremental grouped sweep (through the active kernel
    backend) over just those windows.  Query results are bit-identical to
    calling the full :class:`ContactIntervals` reductions with the same
    pool indices (see :meth:`ContactIntervals.restrict`).

    ``fleet`` is None for a pool-wide query (subset indices are raw pool
    indices, delegated without restriction).
    """

    def __init__(
        self, contacts: "ContactIntervals", fleet: Optional[np.ndarray] = None
    ) -> None:
        self.contacts = contacts
        self.fleet = fleet

    @classmethod
    def from_contacts(cls, contacts, fleet=None) -> "IntervalSubsetQuery":
        if fleet is None:
            return cls(contacts, None)
        fleet = np.sort(np.asarray(fleet, dtype=np.intp).reshape(-1))
        if fleet.size > 1 and np.any(fleet[1:] == fleet[:-1]):
            raise ValueError("fleet indices must be unique")
        return cls(contacts.restrict(fleet), fleet)

    @property
    def n_sites(self) -> int:
        return self.contacts.n_sites

    @property
    def n_satellites(self) -> int:
        """Satellites held by the precompute (the fleet size)."""
        return self.contacts.n_satellites

    def _local(self, subset):
        """Map pool-index subsets to restricted columns (identity pool-wide)."""
        if subset is None or self.fleet is None:
            return subset
        subset = np.asarray(subset, dtype=np.intp).reshape(-1)
        if subset.size == 0:
            return subset
        local = np.searchsorted(self.fleet, subset)
        local = np.minimum(local, self.fleet.size - 1)
        if self.fleet.size == 0 or not np.array_equal(self.fleet[local], subset):
            raise KeyError("subset contains satellites outside the fleet")
        return local

    def coverage_fractions(self, subset=None) -> np.ndarray:
        """Covered fraction per site (S,) for one satellite subset."""
        return self.contacts.coverage_fractions(self._local(subset))

    def satellite_active_fractions(
        self, subset=None, site_indices=None
    ) -> np.ndarray:
        """Active fraction per subset satellite (any selected site visible)."""
        return self.contacts.satellite_active_fractions(
            self._local(subset), site_indices
        )

    def k_coverage_fraction(self, site_index: int, k: int, subset=None) -> float:
        """Fraction of the horizon with >= k subset satellites visible."""
        return self.contacts.k_coverage_fraction(
            site_index, int(k), self._local(subset)
        )


def _edge_visibility(
    propagator: BatchPropagator,
    geometry: "kernels.SiteGeometry",
    site_idx: np.ndarray,
    sat_idx: np.ndarray,
    times: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Exact topocentric visibility test at per-edge (pair, time) points."""
    sat_units = propagator.unit_positions_at(sat_idx, times)
    theta = gmst_rad(times, geometry.grid.gmst_at_epoch_rad)
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    ux = geometry.unit_ecef[site_idx, 0]
    uy = geometry.unit_ecef[site_idx, 1]
    uz = geometry.unit_ecef[site_idx, 2]
    dots = (
        sat_units[:, 0] * (cos_t * ux - sin_t * uy)
        + sat_units[:, 1] * (sin_t * ux + cos_t * uy)
        + sat_units[:, 2] * uz
    )
    return dots >= thresholds[site_idx, sat_idx]


def find_contact_intervals(
    constellation,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    *,
    tolerance_s: float = DEFAULT_EDGE_TOLERANCE_S,
    geometry: Optional["kernels.SiteGeometry"] = None,
    chunk_size: Optional[int] = None,
    cull: bool = True,
    refine: bool = True,
) -> ContactIntervals:
    """Find analytic contact windows for every (site, satellite) pair.

    ``grid`` is the *coarse scan* grid: a pass is detected iff at least one
    scan sample falls inside it — exactly the grid engine's detection
    semantics, so running the scan at the grid's own step makes the two
    engines agree on which passes exist.  Each detected edge is then
    refined to ``tolerance_s`` by bisection on the continuous geometry
    (skipped when ``refine`` is false: edges stay at scan-sample times).

    Refined edges keep the resampling identity: the rise lies in
    ``(t_{k-1}, t_k]`` for the first visible sample ``t_k`` (sets
    symmetric), so sampling the result on the scan grid reproduces the
    grid-engine masks bit-for-bit.
    """
    from repro.sim.visibility import _as_propagator

    propagator = _as_propagator(constellation)
    if geometry is None:
        geometry = kernels.SiteGeometry(sites, grid)
    plan = kernels.plan_stream(
        propagator, geometry, grid, chunk_size=chunk_size, cull=cull
    )
    n_sites = plan.n_sites
    n_sats = plan.n_satellites
    step = grid.step_s
    start_s = grid.start_s
    total = grid.count
    end_s = start_s + step * total

    # -- stage 1: coarse scan for state transitions -----------------------
    trans_pair: List[np.ndarray] = []
    trans_k: List[np.ndarray] = []
    trans_rising: List[np.ndarray] = []
    first_state: Optional[np.ndarray] = None
    prev_col: Optional[np.ndarray] = None
    with span("intervals.scan"):
        for offset, slab in kernels.iter_slabs(plan):
            if prev_col is None:
                first_state = slab[:, :, 0].copy()
            else:
                b_s, b_n = np.nonzero(prev_col != slab[:, :, 0])
                if b_s.size:
                    trans_pair.append(b_s * n_sats + b_n)
                    trans_k.append(np.full(b_s.size, offset, dtype=np.int64))
                    trans_rising.append(slab[b_s, b_n, 0])
            if slab.shape[2] > 1:
                d_s, d_n, d_l = np.nonzero(slab[:, :, 1:] != slab[:, :, :-1])
                if d_s.size:
                    trans_pair.append(d_s * n_sats + d_n)
                    trans_k.append(offset + d_l.astype(np.int64) + 1)
                    trans_rising.append(slab[d_s, d_n, d_l + 1])
            prev_col = slab[:, :, -1].copy()

    if first_state is None:  # zero-sample grid cannot occur (TimeGrid >= 1)
        first_state = np.zeros((n_sites, n_sats), dtype=bool)
        prev_col = first_state

    if trans_pair:
        t_pair = np.concatenate(trans_pair)
        t_k = np.concatenate(trans_k)
        t_rising = np.concatenate(trans_rising)
        # The per-slab fragments are no longer needed; at megaconstellation
        # scale they hold tens of MB that would otherwise stay alive
        # through refinement.
        trans_pair.clear()
        trans_k.clear()
        trans_rising.clear()
    else:
        t_pair = np.empty(0, dtype=np.int64)
        t_k = np.empty(0, dtype=np.int64)
        t_rising = np.empty(0, dtype=bool)
    _SCAN_TRANSITIONS.inc(int(t_pair.size))

    # Implicit edges at the horizon: visible at the first sample means the
    # window is already open (truncated start); visible at the last sample
    # means it never closed (truncated end, clipped at the horizon).
    open_pairs = np.flatnonzero(first_state.ravel()).astype(np.int64)
    still_open = np.flatnonzero(prev_col.ravel()).astype(np.int64)

    rise_pair = np.concatenate([open_pairs, t_pair[t_rising]])
    rise_k = np.concatenate(
        [np.zeros(open_pairs.size, dtype=np.int64), t_k[t_rising]]
    )
    rise_trunc = np.concatenate(
        [np.ones(open_pairs.size, dtype=bool),
         np.zeros(int(t_rising.sum()), dtype=bool)]
    )
    falling = ~t_rising
    set_pair = np.concatenate([t_pair[falling], still_open])
    set_k = np.concatenate(
        [t_k[falling], np.full(still_open.size, total, dtype=np.int64)]
    )
    set_trunc = np.concatenate(
        [np.zeros(int(falling.sum()), dtype=bool),
         np.ones(still_open.size, dtype=bool)]
    )
    del t_pair, t_k, t_rising, falling

    order = np.lexsort((rise_k, rise_pair))
    rise_pair, rise_k, rise_trunc = (
        rise_pair[order], rise_k[order], rise_trunc[order]
    )
    order = np.lexsort((set_k, set_pair))
    set_pair, set_k, set_trunc = set_pair[order], set_k[order], set_trunc[order]
    if not np.array_equal(rise_pair, set_pair):  # pragma: no cover - invariant
        raise AssertionError("rise/set pairing broke: unbalanced transitions")

    # -- stage 2: bisection refinement of real crossings -------------------
    rise_s = start_s + step * rise_k.astype(np.float64)
    set_s = start_s + step * set_k.astype(np.float64)
    if refine and rise_pair.size:
        thresholds = plan.thresholds
        iters = max(1, int(math.ceil(math.log2(max(step / tolerance_s, 2.0)))))
        # One flat batch of every non-truncated edge: rises refine toward
        # the visible (hi) side, sets toward the invisible (hi) side; in
        # both cases the lo-side state is the *old* state, so a single
        # vectorized loop handles them together.
        edge_pair = np.concatenate([rise_pair[~rise_trunc], set_pair[~set_trunc]])
        edge_hi = np.concatenate([rise_s[~rise_trunc], set_s[~set_trunc]])
        lo_state = np.concatenate(
            [np.zeros(int((~rise_trunc).sum()), dtype=bool),
             np.ones(int((~set_trunc).sum()), dtype=bool)]
        )
        refined = np.empty(edge_pair.size, dtype=np.float64)
        with span("intervals.refine"):
            for lo_idx in range(0, edge_pair.size, REFINE_BATCH):
                sl = slice(lo_idx, min(lo_idx + REFINE_BATCH, edge_pair.size))
                site_idx = (edge_pair[sl] // n_sats).astype(np.intp)
                sat_idx = (edge_pair[sl] % n_sats).astype(np.intp)
                hi = edge_hi[sl].copy()
                lo = hi - step
                state = lo_state[sl]
                for _ in range(iters):
                    mid = 0.5 * (lo + hi)
                    vis = _edge_visibility(
                        propagator, geometry, site_idx, sat_idx, mid, thresholds
                    )
                    take_lo = vis == state
                    lo = np.where(take_lo, mid, lo)
                    hi = np.where(take_lo, hi, mid)
                refined[sl] = hi
        _EDGES_REFINED.inc(int(edge_pair.size))
        n_rise = int((~rise_trunc).sum())
        rise_s[~rise_trunc] = refined[:n_rise]
        set_s[~set_trunc] = refined[n_rise:]

    counts = np.bincount(rise_pair, minlength=n_sites * n_sats)
    pair_offsets = np.zeros(n_sites * n_sats + 1, dtype=np.int64)
    np.cumsum(counts, out=pair_offsets[1:])
    _CONTACTS_FOUND.inc(int(rise_pair.size))
    return ContactIntervals(
        n_sites=n_sites,
        n_satellites=n_sats,
        start_s=start_s,
        end_s=end_s,
        rise_s=rise_s,
        set_s=set_s,
        truncated_start=rise_trunc,
        truncated_end=set_trunc,
        pair_offsets=pair_offsets,
    )


__all__ = (
    "DEFAULT_EDGE_TOLERANCE_S",
    "ContactIntervals",
    "IntervalSet",
    "find_contact_intervals",
    "grouped_union_seconds",
    "sweep_count_steps",
)
