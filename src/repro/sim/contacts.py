"""Contact plans: visibility windows as first-class schedule objects.

Satellite operations revolve around *contact plans* — the schedule of
windows during which each (site, satellite) pair can communicate.  This
module extracts them from the visibility tensors and summarizes the pass
statistics the paper's §2 narrative quotes ("a single satellite can only
offer few (less than ten) minutes of coverage per day to a given region").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constellation.satellite import Constellation
from repro.ground.sites import GroundSite
from repro.obs import timeline as obs_timeline
from repro.sim.clock import TimeGrid
from repro.sim.events import ContactEvent, intervals_from_mask
from repro.sim.intervals import ContactIntervals, find_contact_intervals
from repro.sim.visibility import VisibilityEngine


def _narrate_events(events: Sequence[ContactEvent]) -> None:
    """Emit contact begin/end pairs onto the shared simulation timeline."""
    for event in events:
        obs_timeline.emit(
            obs_timeline.CONTACT_BEGIN,
            event.start_s,
            event.sat_id,
            site=event.site_name,
            duration_hint_s=event.duration_s,
        )
        obs_timeline.emit(
            obs_timeline.CONTACT_END,
            event.stop_s,
            event.sat_id,
            site=event.site_name,
        )


def contact_events(
    visibility: np.ndarray,
    site_names: Sequence[str],
    sat_ids: Sequence[str],
    grid: TimeGrid,
) -> List[ContactEvent]:
    """Extract every contact window from a visibility tensor.

    Args:
        visibility: Boolean (S, N, T).
        site_names: S site names.
        sat_ids: N satellite ids.
        grid: The tensor's time grid.

    Each extracted window is also narrated onto the shared simulation
    timeline (:mod:`repro.obs.timeline`) as a ``contact.begin`` /
    ``contact.end`` pair on the satellite's track, so a ``--trace-out``
    export shows every pass as a slice in the viewer.

    Returns:
        Contacts sorted by (start time, site, satellite).
    """
    visibility = np.asarray(visibility, dtype=bool)
    if visibility.ndim != 3:
        raise ValueError(f"visibility must be (S, N, T), got {visibility.shape}")
    if visibility.shape[0] != len(site_names):
        raise ValueError(
            f"need {visibility.shape[0]} site names, got {len(site_names)}"
        )
    if visibility.shape[1] != len(sat_ids):
        raise ValueError(f"need {visibility.shape[1]} sat ids, got {len(sat_ids)}")

    # A pass still open at the final sample has no observed set: close it
    # at the horizon end (start + duration, which may lie beyond the last
    # sample) and flag it truncated instead of pretending the satellite
    # set at the last sampled instant.
    sampled_end_s = grid.start_s + grid.step_s * visibility.shape[2]
    horizon_end_s = grid.start_s + grid.duration_s
    events: List[ContactEvent] = []
    for site_index, site_name in enumerate(site_names):
        for sat_index, sat_id in enumerate(sat_ids):
            mask = visibility[site_index, sat_index]
            if not mask.any():
                continue
            for start_s, stop_s in intervals_from_mask(
                mask, grid.step_s, grid.start_s
            ):
                truncated = stop_s >= sampled_end_s
                events.append(
                    ContactEvent(
                        site_name,
                        sat_id,
                        start_s,
                        horizon_end_s if truncated else stop_s,
                        truncated=truncated,
                    )
                )
    events.sort(key=lambda event: (event.start_s, event.site_name, event.sat_id))
    _narrate_events(events)
    return events


def contact_events_from_intervals(
    contacts: ContactIntervals,
    site_names: Sequence[str],
    sat_ids: Sequence[str],
) -> List[ContactEvent]:
    """Contact events straight from analytic intervals — no grid replay.

    Same ordering, narration, and truncation semantics as
    :func:`contact_events`, but edges carry root-found rise/set times
    instead of sample-quantized ones.  Horizon-truncated windows (either
    edge) are flagged ``truncated``.
    """
    if contacts.n_sites != len(site_names):
        raise ValueError(
            f"need {contacts.n_sites} site names, got {len(site_names)}"
        )
    if contacts.n_satellites != len(sat_ids):
        raise ValueError(
            f"need {contacts.n_satellites} sat ids, got {len(sat_ids)}"
        )
    events: List[ContactEvent] = []
    for site_index, site_name in enumerate(site_names):
        for sat_index, sat_id in enumerate(sat_ids):
            rises, falls, trunc_start, trunc_end = contacts.pair_windows(
                site_index, sat_index
            )
            for rise, fall, t_start, t_end in zip(
                rises, falls, trunc_start, trunc_end
            ):
                events.append(
                    ContactEvent(
                        site_name,
                        sat_id,
                        float(rise),
                        float(fall),
                        truncated=bool(t_start or t_end),
                    )
                )
    events.sort(key=lambda event: (event.start_s, event.site_name, event.sat_id))
    _narrate_events(events)
    return events


@dataclass(frozen=True)
class PassStatistics:
    """Summary of the contact windows of one (site, satellite set) pair."""

    pass_count: int
    total_contact_s: float
    mean_pass_s: float
    max_pass_s: float
    contact_minutes_per_day: float


def pass_statistics(
    events: Sequence[ContactEvent], grid: TimeGrid
) -> PassStatistics:
    """Aggregate pass statistics over a set of contact events.

    An empty contact list is a legitimate outcome (a site no satellite
    ever sees) and returns an all-zero :class:`PassStatistics` — no
    ZeroDivision, no NaN from empty-array reductions.

    Raises:
        ValueError: On an empty horizon.
    """
    days = grid.duration_s / 86_400.0
    if days <= 0.0:
        raise ValueError("grid horizon must be positive")
    if not events:
        return PassStatistics(
            pass_count=0,
            total_contact_s=0.0,
            mean_pass_s=0.0,
            max_pass_s=0.0,
            contact_minutes_per_day=0.0,
        )
    durations = np.array([event.duration_s for event in events])
    total = float(durations.sum())
    return PassStatistics(
        pass_count=int(durations.size),
        total_contact_s=total,
        mean_pass_s=float(durations.mean()),
        max_pass_s=float(durations.max()),
        contact_minutes_per_day=total / 60.0 / days,
    )


def contact_plan(
    constellation: Constellation,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
) -> List[ContactEvent]:
    """One-shot contact plan: propagate, test visibility, extract windows."""
    engine = VisibilityEngine(grid)
    visibility = engine.visibility(constellation, sites)
    return contact_events(
        visibility,
        [site.name for site in sites],
        [satellite.sat_id for satellite in constellation],
        grid,
    )


def contact_plan_intervals(
    constellation: Constellation,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    *,
    tolerance_s: Optional[float] = None,
) -> List[ContactEvent]:
    """Event-driven :func:`contact_plan`: analytic windows, no dense tensor.

    ``grid`` sets the coarse scan; edges are refined by root-finding, so
    the returned start/stop times are sharp to the edge tolerance instead
    of quantized to the sample step.
    """
    kwargs = {} if tolerance_s is None else {"tolerance_s": tolerance_s}
    contacts = find_contact_intervals(constellation, sites, grid, **kwargs)
    return contact_events_from_intervals(
        contacts,
        [site.name for site in sites],
        [satellite.sat_id for satellite in constellation],
    )


def per_satellite_daily_minutes(
    constellation: Constellation,
    site: GroundSite,
    grid: TimeGrid,
) -> Dict[str, float]:
    """Contact minutes/day each satellite offers one site (the §2 quote).

    "a single satellite can only offer few (less than ten) minutes of
    coverage per day to a given region."
    """
    events = contact_plan(constellation, [site], grid)
    days = grid.duration_s / 86_400.0
    minutes: Dict[str, float] = {
        satellite.sat_id: 0.0 for satellite in constellation
    }
    for event in events:
        minutes[event.sat_id] += event.duration_s / 60.0 / days
    return minutes
