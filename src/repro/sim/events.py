"""Event records and interval extraction.

The engine is time-stepped for allocation, but reports its outputs as
*events*: contact windows (satellite rise/set over a site) and sessions
(a terminal actually served through a satellite to a ground station).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def intervals_from_mask(mask: np.ndarray, step_s: float, start_s: float = 0.0) -> List[Tuple[float, float]]:
    """Convert a boolean timeline into [start, stop) intervals in seconds.

    Args:
        mask: 1-D boolean array.
        step_s: Sample spacing.
        start_s: Time of the first sample.

    Returns:
        List of (start_s, stop_s) tuples for each True run.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    starts, stops = edges[::2], edges[1::2]
    return [
        (start_s + step_s * begin, start_s + step_s * end)
        for begin, end in zip(starts, stops)
    ]


@dataclass(frozen=True)
class ContactEvent:
    """A visibility window between a satellite and a ground site.

    ``truncated`` marks a pass clipped by the simulation horizon rather
    than closed by a real set: the satellite was still visible at the
    final sample, so ``stop_s`` is the horizon end, not an observed set
    time.
    """

    site_name: str
    sat_id: str
    start_s: float
    stop_s: float
    truncated: bool = False

    @property
    def duration_s(self) -> float:
        return self.stop_s - self.start_s


@dataclass(frozen=True)
class SessionEvent:
    """A served interval: terminal -> satellite -> ground station.

    Attributes:
        terminal_name: Served user terminal.
        sat_id: Relaying satellite.
        station_name: Terminating ground station (same party as terminal).
        terminal_party: Party consuming the capacity.
        sat_party: Party providing the satellite.
        start_s / stop_s: Session bounds.
        rate_mbps: Allocated rate during the session.
    """

    terminal_name: str
    sat_id: str
    station_name: str
    terminal_party: str
    sat_party: str
    start_s: float
    stop_s: float
    rate_mbps: float

    @property
    def duration_s(self) -> float:
        return self.stop_s - self.start_s

    @property
    def volume_megabits(self) -> float:
        return self.rate_mbps * self.duration_s

    @property
    def is_spare_capacity(self) -> bool:
        """True when the session rides another party's satellite."""
        return self.terminal_party != self.sat_party
