"""Simulation time grids.

Simulation time is seconds from an arbitrary epoch.  A :class:`TimeGrid` is
the uniform sampling used by the coverage engine; the paper's experiments run
over one week ("We quantify the coverage gap across one week").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.constants import DEFAULT_TIME_STEP_S, WEEK_S


@dataclass(frozen=True)
class TimeGrid:
    """A uniform grid of simulation times.

    Attributes:
        start_s: First sample time (inclusive), seconds.
        duration_s: Total span; samples cover [start_s, start_s + duration_s).
        step_s: Sample spacing, seconds.
        gmst_at_epoch_rad: Earth orientation (GMST) at simulation time 0.
    """

    start_s: float = 0.0
    duration_s: float = WEEK_S
    step_s: float = DEFAULT_TIME_STEP_S
    gmst_at_epoch_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.step_s <= 0.0:
            raise ValueError(f"step must be positive, got {self.step_s}")
        if self.step_s > self.duration_s:
            raise ValueError(
                f"step ({self.step_s}) exceeds duration ({self.duration_s})"
            )

    @classmethod
    def one_week(cls, step_s: float = DEFAULT_TIME_STEP_S) -> "TimeGrid":
        """The paper's standard horizon: one week."""
        return cls(duration_s=WEEK_S, step_s=step_s)

    @classmethod
    def hours(cls, hours: float, step_s: float = DEFAULT_TIME_STEP_S) -> "TimeGrid":
        """A grid spanning a number of hours."""
        return cls(duration_s=hours * 3600.0, step_s=step_s)

    @property
    def count(self) -> int:
        """Number of samples."""
        return int(np.floor(self.duration_s / self.step_s + 1e-9))

    @property
    def times_s(self) -> np.ndarray:
        """All sample times as a 1-D float array."""
        return self.start_s + self.step_s * np.arange(self.count, dtype=np.float64)

    def chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield the sample times in consecutive chunks of at most chunk_size."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        times = self.times_s
        for begin in range(0, times.size, chunk_size):
            yield times[begin : begin + chunk_size]

    def seconds_from_samples(self, sample_count: float) -> float:
        """Convert a number of covered samples into seconds."""
        return sample_count * self.step_s
