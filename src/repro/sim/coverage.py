"""Coverage timelines and gap statistics.

Everything the paper's figures measure comes down to boolean coverage masks
over a time grid:

* Fig. 2 reports the *percentage of time without coverage* and the longest
  continuous gap at one site.
* Figs. 4–6 report *population-weighted coverage time* over the 21-city set
  and its changes as satellites are added or withdrawn.

This module turns masks into those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.clock import TimeGrid


def gap_lengths_s(mask: np.ndarray, step_s: float) -> np.ndarray:
    """Durations of the uncovered runs in a boolean coverage mask.

    Args:
        mask: 1-D boolean array; True = covered.
        step_s: Sample spacing in seconds.

    Returns:
        1-D float array of gap durations (seconds), in temporal order.
        A gap of k consecutive uncovered samples counts as k * step_s.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
    if mask.size == 0:
        return np.empty(0)
    uncovered = ~mask
    # Find run boundaries with a sentinel-padded diff.
    padded = np.concatenate(([False], uncovered, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    starts, stops = edges[::2], edges[1::2]
    return (stops - starts).astype(np.float64) * step_s


def covered_runs_s(mask: np.ndarray, step_s: float) -> np.ndarray:
    """Durations of the covered runs (contact intervals), seconds."""
    return gap_lengths_s(~np.asarray(mask, dtype=bool), step_s)


@dataclass(frozen=True)
class CoverageStats:
    """Summary statistics of one site's coverage over a horizon."""

    covered_fraction: float
    uncovered_fraction: float
    covered_time_s: float
    uncovered_time_s: float
    max_gap_s: float
    mean_gap_s: float
    gap_count: int

    @property
    def covered_percent(self) -> float:
        return 100.0 * self.covered_fraction

    @property
    def uncovered_percent(self) -> float:
        return 100.0 * self.uncovered_fraction


def coverage_stats(mask: np.ndarray, step_s: float) -> CoverageStats:
    """Compute :class:`CoverageStats` from a 1-D boolean coverage mask."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
    if mask.size == 0:
        raise ValueError("mask must be non-empty")
    covered = float(mask.mean())
    gaps = gap_lengths_s(mask, step_s)
    return CoverageStats(
        covered_fraction=covered,
        uncovered_fraction=1.0 - covered,
        covered_time_s=float(mask.sum()) * step_s,
        uncovered_time_s=float((~mask).sum()) * step_s,
        max_gap_s=float(gaps.max()) if gaps.size else 0.0,
        mean_gap_s=float(gaps.mean()) if gaps.size else 0.0,
        gap_count=int(gaps.size),
    )


@dataclass(frozen=True)
class CoverageTimeline:
    """A named coverage mask bound to its time grid."""

    site_name: str
    grid: TimeGrid
    mask: np.ndarray

    def stats(self) -> CoverageStats:
        return coverage_stats(self.mask, self.grid.step_s)

    @property
    def covered_fraction(self) -> float:
        return float(np.asarray(self.mask, dtype=bool).mean())


def population_weighted_coverage_fraction(
    masks: np.ndarray, weights: Sequence[float]
) -> float:
    """Population-weighted coverage fraction over multiple sites.

    Args:
        masks: Boolean array of shape (S, T) — per-site coverage.
        weights: S non-negative weights; normalized internally.

    Returns:
        sum_s w_s * (covered fraction of site s), with weights normalized to
        sum to 1.  This is the paper's §3.2 objective ("population weighted
        coverage over 21 most populous cities").
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be (S, T), got shape {masks.shape}")
    weight_array = np.asarray(list(weights), dtype=np.float64)
    if weight_array.shape != (masks.shape[0],):
        raise ValueError(
            f"need {masks.shape[0]} weights, got {weight_array.shape}"
        )
    if np.any(weight_array < 0.0):
        raise ValueError("weights must be non-negative")
    total = weight_array.sum()
    if total <= 0.0:
        raise ValueError("weights must not all be zero")
    per_site = masks.mean(axis=1)
    return float(np.dot(weight_array / total, per_site))


def population_weighted_coverage_time_s(
    masks: np.ndarray, weights: Sequence[float], grid: TimeGrid
) -> float:
    """Population-weighted covered *time* in seconds over the grid horizon."""
    return population_weighted_coverage_fraction(masks, weights) * grid.duration_s


def coverage_improvement_s(
    base_masks: np.ndarray,
    augmented_masks: np.ndarray,
    weights: Sequence[float],
    grid: TimeGrid,
) -> float:
    """Weighted coverage-time gain of an augmented constellation over a base.

    The paper's Fig. 4 metric: "improvement in population-weighted global
    coverage time across one week" when satellites are added.
    """
    base = population_weighted_coverage_time_s(base_masks, weights, grid)
    augmented = population_weighted_coverage_time_s(augmented_masks, weights, grid)
    return augmented - base


def coverage_reduction_fraction(
    base_masks: np.ndarray,
    reduced_masks: np.ndarray,
    weights: Sequence[float],
) -> float:
    """Weighted coverage loss (as a fraction of the horizon) after withdrawal.

    The paper's Fig. 5/6 metric: reduction in population-weighted coverage
    when satellites are withdrawn, expressed as a fraction of total time
    (24.17% for L=200 in the paper).
    """
    base = population_weighted_coverage_fraction(base_masks, weights)
    reduced = population_weighted_coverage_fraction(reduced_masks, weights)
    return base - reduced
