"""Traffic workload generation.

Terminals demand capacity over time.  Two workload shapes cover the paper's
use cases:

* :class:`ConstantDemand` — an always-on terminal (the coverage experiments'
  implicit model: a terminal wants service whenever a satellite is visible).
* :class:`PoissonSessions` — bursty demand: sessions arrive as a Poisson
  process with exponential holding times, the classical teletraffic model.
  This is what the bootstrapping analysis uses for delay-tolerant IoT-style
  traffic (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.sim.clock import TimeGrid


class DemandModel(Protocol):
    """A workload: produces a per-time-step demand mask/level for a terminal."""

    def demand_mbps(self, grid: TimeGrid, rng: np.random.Generator) -> np.ndarray:
        """Return a (T,) array of demanded rate at each time step."""
        ...


@dataclass(frozen=True)
class ConstantDemand:
    """Always-on demand at a fixed rate."""

    rate_mbps: float = 100.0

    def __post_init__(self) -> None:
        if self.rate_mbps < 0.0:
            raise ValueError(f"rate must be non-negative, got {self.rate_mbps}")

    def demand_mbps(self, grid: TimeGrid, rng: np.random.Generator) -> np.ndarray:
        return np.full(grid.count, self.rate_mbps)


@dataclass(frozen=True)
class PoissonSessions:
    """Sessions arrive Poisson(rate) with Exp(mean_duration) holding times.

    Attributes:
        arrivals_per_hour: Mean session arrival rate.
        mean_duration_s: Mean session length.
        rate_mbps: Demand while a session is active (sessions superpose).
    """

    arrivals_per_hour: float = 2.0
    mean_duration_s: float = 600.0
    rate_mbps: float = 50.0

    def __post_init__(self) -> None:
        if self.arrivals_per_hour < 0.0:
            raise ValueError("arrival rate must be non-negative")
        if self.mean_duration_s <= 0.0:
            raise ValueError("mean duration must be positive")
        if self.rate_mbps < 0.0:
            raise ValueError("rate must be non-negative")

    def demand_mbps(self, grid: TimeGrid, rng: np.random.Generator) -> np.ndarray:
        demand = np.zeros(grid.count)
        if self.arrivals_per_hour == 0.0 or self.rate_mbps == 0.0:
            return demand
        horizon = grid.duration_s
        expected = self.arrivals_per_hour * horizon / 3600.0
        count = rng.poisson(expected)
        starts = rng.uniform(0.0, horizon, size=count)
        durations = rng.exponential(self.mean_duration_s, size=count)
        for start, duration in zip(starts, durations):
            begin = int(start // grid.step_s)
            end = int(min(horizon, start + duration) // grid.step_s) + 1
            demand[begin : min(end, grid.count)] += self.rate_mbps
        return demand


@dataclass(frozen=True)
class DiurnalDemand:
    """Demand modulated by local time of day (busy-hour shaping).

    Rate follows ``base * (1 + depth * sin(2*pi*(t/day - peak)))`` clipped at
    zero — a smooth stand-in for the evening-peak profile of consumer
    broadband.
    """

    base_rate_mbps: float = 100.0
    depth: float = 0.6
    peak_hour_local: float = 20.0
    longitude_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_mbps < 0.0:
            raise ValueError("base rate must be non-negative")
        if not 0.0 <= self.depth <= 1.0:
            raise ValueError(f"depth must be in [0, 1], got {self.depth}")

    def demand_mbps(self, grid: TimeGrid, rng: np.random.Generator) -> np.ndarray:
        times = grid.times_s
        local_hours = (times / 3600.0 + self.longitude_deg / 15.0) % 24.0
        phase = 2.0 * np.pi * (local_hours - self.peak_hour_local) / 24.0
        rate = self.base_rate_mbps * (1.0 + self.depth * np.cos(phase))
        return np.clip(rate, 0.0, None)
