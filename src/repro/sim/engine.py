"""The bent-pipe session simulator.

This is the event-level heart of the substrate: it walks a time grid,
matches user terminals to satellites under the paper's architectural rules,
and emits session events + utilization accounting.

Rules implemented (paper §3.1–§3.2):

1. **Bent pipe** — a terminal can only be served through a satellite that is
   simultaneously visible from the terminal *and* from a ground station of
   the terminal's own party ("a participant's terminals connect to their own
   ground stations").
2. **Owner priority** — a satellite first serves its owner's terminals; only
   *spare* capacity is offered to other parties ("these satellites offer
   their spare capacity to other users of the network when not in use by the
   contributor's devices").
3. **Capacity limits** — each satellite has a nominal relay capacity
   (``Satellite.capacity_mbps``); allocations never exceed it.

Satellite selection among eligible candidates is
highest-remaining-capacity-first with deterministic tie-breaks, so runs are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import BOLTZMANN_DBW, SPEED_OF_LIGHT
from repro.constellation.satellite import Constellation
from repro.ground.sites import GroundStation, UserTerminal
from repro.obs import get_logger, metrics
from repro.obs import timeline as obs_timeline
from repro.obs.trace import span
from repro.links.bentpipe import BentPipeLink, RelayMode
from repro.links.channel import achievable_rates_bps_array
from repro.orbits.frames import gmst_rad
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.events import SessionEvent, intervals_from_mask
from repro.sim.traffic import ConstantDemand, DemandModel
from repro.sim.visibility import VisibilityEngine

_LOG = get_logger(__name__)

_SESSIONS = metrics.counter("sim.engine.sessions")
_ALLOCATIONS = metrics.counter("sim.engine.allocations")
_HANDOVERS = metrics.counter("sim.engine.handovers")
_UNSERVED_STEPS = metrics.counter("sim.engine.unserved_demand_steps")
#: Peak of (total allocated load / total constellation capacity) over the run.
_SATURATION = metrics.gauge("sim.engine.capacity_saturation_peak")


def _snr_linear_array(budget, distance_m: np.ndarray) -> np.ndarray:
    """Vectorized version of :meth:`LinkBudget.snr_linear` (0 at inf range)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        fspl_db = 20.0 * np.log10(
            4.0 * np.pi * distance_m * budget.frequency_hz / SPEED_OF_LIGHT
        )
        snr_db = (
            budget.eirp_dbw
            + budget.gain_over_temperature_db_k
            - fspl_db
            - budget.extra_losses_db
            - BOLTZMANN_DBW
            - 10.0 * np.log10(budget.bandwidth_hz)
        )
        snr = np.power(10.0, snr_db / 10.0)
    return np.where(np.isfinite(snr), snr, 0.0)


@dataclass
class SimulationResult:
    """Everything one engine run produces."""

    grid: TimeGrid
    sessions: List[SessionEvent]
    served_mbps: np.ndarray  # (terminals, T) rate actually delivered
    demand_mbps: np.ndarray  # (terminals, T) rate requested
    satellite_load_mbps: np.ndarray  # (satellites, T) capacity in use
    terminal_names: List[str]
    sat_ids: List[str]

    @property
    def served_fraction(self) -> np.ndarray:
        """Per-terminal fraction of demanded volume actually served."""
        demanded = self.demand_mbps.sum(axis=1)
        served = self.served_mbps.sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            fraction = np.where(demanded > 0.0, served / demanded, 1.0)
        return fraction

    @property
    def total_served_megabits(self) -> float:
        return float(self.served_mbps.sum()) * self.grid.step_s

    def sessions_by_party_pair(self) -> Dict[Tuple[str, str], float]:
        """Total served megabits keyed by (consumer party, provider party)."""
        volumes: Dict[Tuple[str, str], float] = {}
        for session in self.sessions:
            key = (session.terminal_party, session.sat_party)
            volumes[key] = volumes.get(key, 0.0) + session.volume_megabits
        return volumes

    def spare_capacity_megabits(self) -> float:
        """Volume served across party boundaries (the MP-LEO trade)."""
        return sum(
            session.volume_megabits
            for session in self.sessions
            if session.is_spare_capacity
        )


class BentPipeSimulator:
    """Time-stepped matching of terminals to satellites.

    Example:
        >>> simulator = BentPipeSimulator(constellation, terminals, stations,
        ...                               TimeGrid.hours(6.0))
        >>> result = simulator.run(np.random.default_rng(0))
    """

    def __init__(
        self,
        constellation: Constellation,
        terminals: Sequence[UserTerminal],
        stations: Sequence[GroundStation],
        grid: TimeGrid,
        demand: Optional[Sequence[DemandModel]] = None,
        chunk_size: int = 2048,
        link: Optional[BentPipeLink] = None,
    ) -> None:
        """Args:
            link: Optional RF model.  When provided, per-assignment rates
                are additionally capped by the end-to-end achievable rate of
                the bent pipe at the instantaneous uplink/downlink slant
                ranges (MODCOD ladder); when None, geometry-only service at
                the demanded rate (the coverage experiments' model).
            (Remaining arguments as documented on the class.)
        """
        if not terminals:
            raise ValueError("at least one terminal is required")
        if not stations:
            raise ValueError("at least one ground station is required")
        self.constellation = constellation
        self.terminals = list(terminals)
        self.stations = list(stations)
        self.grid = grid
        self.link = link
        if demand is None:
            demand = [ConstantDemand(terminal.demand_mbps) for terminal in terminals]
        if len(demand) != len(terminals):
            raise ValueError(
                f"need {len(terminals)} demand models, got {len(demand)}"
            )
        self.demand_models = list(demand)
        self._engine = VisibilityEngine(grid, chunk_size=chunk_size)

    def _site_positions_eci(self, site) -> np.ndarray:
        """ECI positions of a fixed site over the grid: (T, 3)."""
        times = self.grid.times_s
        theta = gmst_rad(times, self.grid.gmst_at_epoch_rad)
        x, y, z = np.asarray(site.position_ecef, dtype=np.float64)
        cos_t = np.cos(theta)
        sin_t = np.sin(theta)
        return np.stack(
            [cos_t * x - sin_t * y, sin_t * x + cos_t * y, np.full(times.size, z)],
            axis=-1,
        )

    def _adaptive_rate_caps(self) -> Optional[np.ndarray]:
        """Per-(terminal, satellite, step) achievable rate caps in Mbps.

        Returns None when no link model is configured.  The downlink hop
        uses each party's nearest *visible* ground station; entries with no
        reachable station come out as 0 Mbps (they are also ineligible in
        the relayability tensor, so the zero never surfaces).
        """
        if self.link is None:
            return None
        propagator = BatchPropagator(self.constellation.elements)
        sat_positions = propagator.positions_eci(self.grid.times_s)  # (N, T, 3)

        station_vis = self._engine.visibility(self.constellation, self.stations)
        station_ranges = []
        for station_index, station in enumerate(self.stations):
            positions = self._site_positions_eci(station)  # (T, 3)
            ranges = np.linalg.norm(sat_positions - positions[None], axis=-1)
            station_ranges.append(
                np.where(station_vis[station_index], ranges, np.inf)
            )
        station_range_stack = np.stack(station_ranges)  # (S_g, N, T)

        downlink_range_by_party = {}
        station_parties = [station.party for station in self.stations]
        for party in {terminal.party for terminal in self.terminals}:
            member = [
                index
                for index, station_party in enumerate(station_parties)
                if station_party == party
            ]
            if member:
                downlink_range_by_party[party] = station_range_stack[member].min(
                    axis=0
                )

        bandwidth = min(self.link.uplink.bandwidth_hz, self.link.downlink.bandwidth_hz)
        n_sats = len(self.constellation)
        n_times = self.grid.count
        caps = np.zeros((len(self.terminals), n_sats, n_times))
        for terminal_index, terminal in enumerate(self.terminals):
            down_range = downlink_range_by_party.get(terminal.party)
            if down_range is None:
                continue
            positions = self._site_positions_eci(terminal)
            up_range = np.linalg.norm(sat_positions - positions[None], axis=-1)
            snr_up = _snr_linear_array(self.link.uplink, up_range)
            snr_down = _snr_linear_array(self.link.downlink, down_range)
            with np.errstate(divide="ignore", invalid="ignore"):
                if self.link.mode is RelayMode.TRANSPARENT:
                    snr_total = np.where(
                        (snr_up > 0.0) & (snr_down > 0.0),
                        1.0 / (1.0 / np.maximum(snr_up, 1e-300)
                               + 1.0 / np.maximum(snr_down, 1e-300)),
                        0.0,
                    )
                else:
                    snr_total = np.minimum(snr_up, snr_down)
                snr_db = np.where(
                    snr_total > 0.0, 10.0 * np.log10(np.maximum(snr_total, 1e-300)),
                    -np.inf,
                )
            caps[terminal_index] = (
                achievable_rates_bps_array(snr_db, bandwidth) / 1e6
            )
        return caps

    def _relay_eligibility(self) -> Tuple[np.ndarray, np.ndarray]:
        """Visibility tensors.

        Returns:
            terminal_vis: (terminals, N, T) — terminal sees satellite.
            relayable: (terminals, N, T) — satellite can also reach a ground
                station of the terminal's party at the same instant.
        """
        terminal_vis = self._engine.visibility(self.constellation, self.terminals)
        station_vis = self._engine.visibility(self.constellation, self.stations)
        station_parties = [station.party for station in self.stations]

        relayable = np.zeros_like(terminal_vis)
        for terminal_index, terminal in enumerate(self.terminals):
            member = [
                index
                for index, party in enumerate(station_parties)
                if party == terminal.party
            ]
            if not member:
                continue  # No ground segment for this party: never relayable.
            party_station_vis = station_vis[member].any(axis=0)  # (N, T)
            relayable[terminal_index] = terminal_vis[terminal_index] & party_station_vis
        return terminal_vis, relayable

    def run(self, rng: np.random.Generator) -> SimulationResult:
        """Run the allocation over the whole grid."""
        with span("engine.eligibility"):
            _, relayable = self._relay_eligibility()
        with span("engine.rate_caps"):
            rate_caps = self._adaptive_rate_caps()
        n_terminals, n_sats, n_times = relayable.shape

        demand = np.stack(
            [
                model.demand_mbps(self.grid, rng)
                for model in self.demand_models
            ]
        )  # (terminals, T)
        capacity = np.array(
            [satellite.capacity_mbps for satellite in self.constellation]
        )
        sat_parties = [satellite.party for satellite in self.constellation]
        terminal_parties = [terminal.party for terminal in self.terminals]

        served = np.zeros_like(demand)
        sat_load = np.zeros((n_sats, n_times))
        # (terminals, T) satellite index serving each terminal, -1 when unserved.
        assignment = np.full((n_terminals, n_times), -1, dtype=np.int64)

        # Owner's terminals first at each step (rule 2), then others; within a
        # class, terminals iterate in a fixed order for reproducibility.
        own_pairs = [
            (t, n)
            for t in range(n_terminals)
            for n in range(n_sats)
            if terminal_parties[t] == sat_parties[n]
        ]
        own_sat_of_terminal: Dict[int, set] = {}
        for t, n in own_pairs:
            own_sat_of_terminal.setdefault(t, set()).add(n)

        with span("engine.allocate"):
            for step in range(n_times):
                remaining = capacity.astype(np.float64).copy()
                eligible = relayable[:, :, step]  # (terminals, N)
                for own_pass in (True, False):
                    for terminal_index in range(n_terminals):
                        want = demand[terminal_index, step]
                        if want <= 0.0 or assignment[terminal_index, step] >= 0:
                            continue
                        candidates = np.flatnonzero(eligible[terminal_index])
                        if candidates.size == 0:
                            continue
                        own_sats = own_sat_of_terminal.get(terminal_index, set())
                        if own_pass:
                            candidates = np.array(
                                [c for c in candidates if c in own_sats],
                                dtype=np.int64,
                            )
                        if candidates.size == 0:
                            continue
                        candidates = candidates[remaining[candidates] > 0.0]
                        if rate_caps is not None and candidates.size:
                            candidates = candidates[
                                rate_caps[terminal_index, candidates, step] > 0.0
                            ]
                        if candidates.size == 0:
                            continue
                        # Highest remaining capacity first; ties break on index.
                        best = candidates[np.argmax(remaining[candidates])]
                        grant = min(want, remaining[best])
                        if rate_caps is not None:
                            grant = min(
                                grant, float(rate_caps[terminal_index, best, step])
                            )
                        remaining[best] -= grant
                        served[terminal_index, step] = grant
                        sat_load[best, step] += grant
                        assignment[terminal_index, step] = best

        sessions = self._sessions_from_assignment(
            assignment, served, terminal_parties, sat_parties
        )
        self._record_run_metrics(assignment, demand, sat_load, capacity, sessions)
        with span("engine.timeline"):
            self._emit_timeline_events(
                assignment, demand, sat_load, capacity, sessions,
                terminal_parties, sat_parties,
            )
        return SimulationResult(
            grid=self.grid,
            sessions=sessions,
            served_mbps=served,
            demand_mbps=demand,
            satellite_load_mbps=sat_load,
            terminal_names=[terminal.name for terminal in self.terminals],
            sat_ids=[satellite.sat_id for satellite in self.constellation],
        )

    def _emit_timeline_events(
        self,
        assignment: np.ndarray,
        demand: np.ndarray,
        sat_load: np.ndarray,
        capacity: np.ndarray,
        sessions: Sequence[SessionEvent],
        terminal_parties: Sequence[str],
        sat_parties: Sequence[str],
    ) -> None:
        """Narrate one engine run onto the shared simulation timeline.

        Emitted kinds (see :mod:`repro.obs.timeline`):

        * ``allocation.grant`` — one windowed event per session, on the
          serving satellite's track.
        * ``allocation.deny`` — windowed, per contiguous interval in which a
          terminal demanded capacity but no satellite could serve it.
        * ``handover`` — instant, when a terminal switches satellites at
          consecutive steps.
        * ``capacity.saturated`` — windowed, per interval a satellite ran at
          its full nominal capacity.
        """
        grid = self.grid
        step_s = grid.step_s
        times = grid.times_s
        for session in sessions:
            obs_timeline.emit(
                obs_timeline.ALLOC_GRANT,
                session.start_s,
                session.sat_id,
                party=session.sat_party,
                duration_s=session.duration_s,
                terminal=session.terminal_name,
                terminal_party=session.terminal_party,
                rate_mbps=session.rate_mbps,
                spare=session.is_spare_capacity,
            )
        unserved = (demand > 0.0) & (assignment < 0)
        for terminal_index, terminal in enumerate(self.terminals):
            mask = unserved[terminal_index]
            if not mask.any():
                continue
            for start_s, stop_s in intervals_from_mask(mask, step_s, grid.start_s):
                obs_timeline.emit(
                    obs_timeline.ALLOC_DENY,
                    start_s,
                    terminal.name,
                    party=terminal_parties[terminal_index],
                    duration_s=stop_s - start_s,
                )
        before, after = assignment[:, :-1], assignment[:, 1:]
        switches = (before >= 0) & (after >= 0) & (before != after)
        for terminal_index, step in zip(*np.nonzero(switches)):
            obs_timeline.emit(
                obs_timeline.HANDOVER,
                float(times[step + 1]),
                self.terminals[terminal_index].name,
                party=terminal_parties[terminal_index],
                from_sat=self.constellation[int(before[terminal_index, step])].sat_id,
                to_sat=self.constellation[int(after[terminal_index, step])].sat_id,
            )
        # Full-capacity intervals per satellite (float-tolerant equality).
        saturated = (capacity[:, None] > 0.0) & (
            sat_load >= capacity[:, None] * (1.0 - 1e-9)
        )
        for sat_index in np.flatnonzero(saturated.any(axis=1)):
            satellite = self.constellation[int(sat_index)]
            for start_s, stop_s in intervals_from_mask(
                saturated[sat_index], step_s, grid.start_s
            ):
                obs_timeline.emit(
                    obs_timeline.CAPACITY_SATURATED,
                    start_s,
                    satellite.sat_id,
                    party=sat_parties[int(sat_index)],
                    duration_s=stop_s - start_s,
                    capacity_mbps=float(capacity[sat_index]),
                )

    @staticmethod
    def _record_run_metrics(
        assignment: np.ndarray,
        demand: np.ndarray,
        sat_load: np.ndarray,
        capacity: np.ndarray,
        sessions: Sequence[SessionEvent],
    ) -> None:
        """Account one engine run on the shared metrics registry."""
        allocations = int(np.count_nonzero(assignment >= 0))
        # A handover is a terminal switching between two satellites at
        # consecutive steps (gaps in service are not handovers).
        before, after = assignment[:, :-1], assignment[:, 1:]
        handovers = int(
            np.count_nonzero((before >= 0) & (after >= 0) & (before != after))
        )
        unserved = int(np.count_nonzero((demand > 0.0) & (assignment < 0)))
        _SESSIONS.inc(len(sessions))
        _ALLOCATIONS.inc(allocations)
        _HANDOVERS.inc(handovers)
        _UNSERVED_STEPS.inc(unserved)
        total_capacity = float(capacity.sum())
        if total_capacity > 0.0:
            peak = float(sat_load.sum(axis=0).max()) / total_capacity
            _SATURATION.set(max(_SATURATION.value, peak))
        _LOG.info(
            "engine run: %d sessions, %d allocations, %d handovers, "
            "%d unserved demand steps",
            len(sessions), allocations, handovers, unserved,
        )

    def _sessions_from_assignment(
        self,
        assignment: np.ndarray,
        served: np.ndarray,
        terminal_parties: Sequence[str],
        sat_parties: Sequence[str],
    ) -> List[SessionEvent]:
        """Collapse per-step assignments into contiguous session events."""
        sessions: List[SessionEvent] = []
        step_s = self.grid.step_s
        station_of_party = {station.party: station.name for station in self.stations}
        for terminal_index, terminal in enumerate(self.terminals):
            row = assignment[terminal_index]
            for sat_index in np.unique(row[row >= 0]):
                mask = row == sat_index
                for start_s, stop_s in intervals_from_mask(
                    mask, step_s, self.grid.start_s
                ):
                    begin = int((start_s - self.grid.start_s) / step_s)
                    end = int((stop_s - self.grid.start_s) / step_s)
                    rate = float(served[terminal_index, begin:end].mean())
                    sessions.append(
                        SessionEvent(
                            terminal_name=terminal.name,
                            sat_id=self.constellation[int(sat_index)].sat_id,
                            station_name=station_of_party.get(terminal.party, ""),
                            terminal_party=terminal_parties[terminal_index],
                            sat_party=sat_parties[int(sat_index)],
                            start_s=start_s,
                            stop_s=stop_s,
                            rate_mbps=rate,
                        )
                    )
        sessions.sort(key=lambda session: (session.start_s, session.terminal_name))
        return sessions
