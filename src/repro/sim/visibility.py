"""Vectorized satellite-ground visibility.

The coverage experiments need, for S ground sites, N satellites and T time
samples, the boolean visibility tensor ``visible[s, n, t]``.  Computing it
through the full topocentric transform would be exact but slow; instead we
use the classical spherical-geometry equivalence (see
:mod:`repro.orbits.topocentric`):

    elevation(site, sat) >= mask
        <=>  central_angle(site_dir, sat_dir) <= psi(r_sat, R_site, mask)
        <=>  dot(unit_site, unit_sat) >= cos(psi)

where ``unit_site``/``unit_sat`` are geocentric unit vectors in a common
frame.  Both sides are rotated into ECI (sites rotate with Earth, satellites
come out of the propagator in ECI), so no per-satellite frame conversion is
needed.  Time is processed in chunks to bound peak memory.

The threshold ``psi`` is computed from each satellite's semi-major axis; for
the near-circular orbits of LEO constellations (e < 0.02) the instantaneous
radius differs from ``a`` by under ~1%, shifting footprint edges by a couple
of km — far below the time-step quantization of contact edges.

The heavy lifting lives in :mod:`repro.sim.kernels`: chunk-streaming
reduction kernels that never materialize the (S, N, T) tensor, plus the
geometric pair cull that skips propagation for (site, satellite) pairs
that can never see each other.  :class:`VisibilityEngine` keeps the
figure-facing API; :meth:`VisibilityEngine.visibility` remains the
materialized reference the streaming paths are tested bit-for-bit against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.constellation.satellite import Constellation
from repro.obs import get_logger
from repro.obs.trace import span
from repro.orbits.elements import OrbitalElements
from repro.orbits.propagator import BatchPropagator
from repro.ground.sites import GroundSite
from repro.sim import backends, kernels
from repro.sim.clock import TimeGrid
from repro.sim.kernels import (  # re-exported: the historical home of these
    SiteGeometry,
    coverage_cos_thresholds,
    record_visibility_metrics as _record_visibility_metrics,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ConstellationLike",
    "PackedVisibility",
    "SiteGeometry",
    "VisibilityEngine",
    "coverage_cos_thresholds",
    "packed_visibility",
    "visibility_matrix",
]

_LOG = get_logger(__name__)

#: Default number of time samples per chunk for the *materialized* path
#: and the packed pool build (the full tensor / packed cache dominates the
#: footprint anyway).  The streaming reductions default to the adaptive
#: :func:`repro.sim.kernels.default_chunk_size` — for them the chunk IS
#: the footprint.
DEFAULT_CHUNK_SIZE = 2048

ConstellationLike = Union[Constellation, Sequence[OrbitalElements], BatchPropagator]


def _as_propagator(constellation: ConstellationLike) -> BatchPropagator:
    if isinstance(constellation, BatchPropagator):
        return constellation
    if isinstance(constellation, Constellation):
        return BatchPropagator(constellation.elements)
    return BatchPropagator(list(constellation))


class VisibilityEngine:
    """Computes visibility tensors over a time grid.

    The engine is stateless with respect to constellations: instantiate once
    per time grid and reuse it for many constellation samples (the
    Monte-Carlo experiments do exactly that).

    The reduction methods (:meth:`site_coverage`, :meth:`satellite_activity`,
    :meth:`visible_counts`) stream: they hold one (S, N, chunk) slab at a
    time and never allocate the full tensor.  :meth:`visibility` still
    materializes (S, N, T) — it is the exact reference the streaming paths
    are validated against, and some callers genuinely need the tensor.

    Example:
        >>> from repro.sim import TimeGrid, VisibilityEngine
        >>> engine = VisibilityEngine(TimeGrid.hours(3.0))
        >>> # visible = engine.visibility(constellation, [site])
    """

    def __init__(self, grid: TimeGrid, chunk_size: Optional[int] = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.grid = grid
        #: Chunk of the materialized :meth:`visibility` path.
        self.chunk_size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        #: Chunk of the streaming reductions; an explicit ``chunk_size``
        #: governs both paths.  ``None`` defers to the adaptive default
        #: (:func:`repro.sim.kernels.default_chunk_size`), which sizes the
        #: slab per population at plan time.
        self.stream_chunk_size = chunk_size

    def _site_units_eci(
        self, sites: Sequence[GroundSite], times_s: np.ndarray
    ) -> np.ndarray:
        """Geocentric unit directions of sites in ECI at each time: (S, T, 3)."""
        return SiteGeometry(sites, self.grid).units_eci(times_s)

    def _plan(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
        geometry: Optional[SiteGeometry],
        chunk_size: Optional[int],
        cull: bool,
        pack: bool = False,
    ) -> kernels.StreamPlan:
        if geometry is None:
            if not sites:
                raise ValueError("at least one ground site is required")
            geometry = SiteGeometry(sites, self.grid)
        return kernels.plan_stream(
            _as_propagator(constellation),
            geometry,
            self.grid,
            chunk_size=chunk_size,
            cull=cull,
            pack=pack,
        )

    def visibility(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
        geometry: Optional[SiteGeometry] = None,
        cull: bool = True,
    ) -> np.ndarray:
        """Full visibility tensor (the materialized reference path).

        Args:
            constellation: A :class:`Constellation`, element list, or
                prebuilt :class:`BatchPropagator`.
            sites: Ground sites (terminals or stations).
            geometry: Precomputed :class:`SiteGeometry` (overrides
                ``sites``; experiment contexts cache these).
            cull: Apply the conservative geometric pair cull (bit-neutral;
                disable to force the fully unculled reference).

        Returns:
            Boolean array of shape (S, N, T).
        """
        plan = self._plan(constellation, sites, geometry, self.chunk_size, cull)
        visible = np.empty(
            (plan.n_sites, plan.n_satellites, self.grid.count), dtype=bool
        )
        visible_samples = 0
        with span("visibility.tensor"):
            for offset, slab in kernels.iter_slabs(plan):
                visible[:, :, offset : offset + slab.shape[2]] = slab
                visible_samples += int(np.count_nonzero(slab))
        _record_visibility_metrics(
            plan.n_sites, plan.n_satellites, self.grid.count, visible_samples
        )
        return visible

    def site_coverage(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
        geometry: Optional[SiteGeometry] = None,
        cull: bool = True,
    ) -> np.ndarray:
        """Per-site coverage mask: (S, T) — true when any satellite is visible."""
        return kernels.stream_site_coverage(
            self._plan(constellation, sites, geometry, self.stream_chunk_size, cull)
        )

    def satellite_activity(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
        geometry: Optional[SiteGeometry] = None,
        cull: bool = True,
    ) -> np.ndarray:
        """Per-satellite activity mask: (N, T) — true when any site is visible.

        This is the paper's Fig. 3 notion of a satellite being "connected to a
        user terminal"; idle time is the complement.
        """
        return kernels.stream_satellite_activity(
            self._plan(constellation, sites, geometry, self.stream_chunk_size, cull)
        )

    def visible_counts(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
        geometry: Optional[SiteGeometry] = None,
        cull: bool = True,
    ) -> np.ndarray:
        """Number of visible satellites per site per time: (S, T) ints.

        Streamed; the counts accumulate into uint16 (uint32 past 65535
        satellites), which is exact — the count axis is bounded by N.
        """
        return kernels.stream_visible_counts(
            self._plan(constellation, sites, geometry, self.stream_chunk_size, cull)
        )


def visibility_matrix(
    constellation: ConstellationLike,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Convenience wrapper: one-shot visibility tensor (S, N, T)."""
    return VisibilityEngine(grid, chunk_size=chunk_size).visibility(
        constellation, sites
    )


#: Lookup table mapping a byte value to its popcount; used to count covered
#: samples in packed masks without unpacking (shared with the backend
#: registry, the historical home of the alias).
_POPCOUNT = backends.POPCOUNT_TABLE


class PackedVisibility:
    """A bit-packed visibility tensor for Monte-Carlo subset experiments.

    The paper's experiments repeatedly ask: "for a random subset of this
    satellite pool, what is the coverage at these sites?"  Propagating the
    pool once and answering each run with boolean reductions is orders of
    magnitude cheaper than re-propagating.  Packing 8 time samples per byte
    keeps a full Starlink-scale pool x 21 sites x one week at ~120 MB.

    The time axis is padded to a byte boundary with zero (= not visible)
    bits, which is neutral for every OR/popcount reduction as long as counts
    use the true sample count ``n_times``.

    Build instances with :func:`packed_visibility`.  ``segment`` is set by
    the parallel runner when ``packed`` is a view into a
    ``multiprocessing.shared_memory`` segment this process owns; whoever
    caches the instance disposes the segment
    (:meth:`repro.experiments.common.ExperimentContext.clear`).
    """

    def __init__(self, packed: np.ndarray, n_times: int, grid: TimeGrid) -> None:
        if packed.ndim != 3 or packed.dtype != np.uint8:
            raise ValueError("packed must be a (S, N, ceil(T/8)) uint8 array")
        if packed.shape[2] * 8 < n_times:
            raise ValueError("packed array too short for n_times")
        self.packed = packed
        self.n_times = n_times
        self.grid = grid
        self.segment = None  # Owned shared-memory segment, when shm-backed.

    @property
    def n_sites(self) -> int:
        return self.packed.shape[0]

    @property
    def n_satellites(self) -> int:
        return self.packed.shape[1]

    @staticmethod
    def _as_index_array(indices) -> np.ndarray:
        """Normalize a selection to an integer index array.

        A plain empty list arrives as a float64 array, which numpy rejects
        as an index; coerce empty selections to an integer dtype so "select
        nothing" is a valid (zero-result) query rather than an IndexError.
        """
        array = np.asarray(indices)
        if array.size == 0:
            return np.empty(0, dtype=np.intp)
        return array

    def _subset(self, sat_indices) -> np.ndarray:
        if sat_indices is None:
            return self.packed
        return self.packed[:, self._as_index_array(sat_indices), :]

    def site_mask(self, site_index: int, sat_indices=None) -> np.ndarray:
        """Boolean coverage mask (T,) of one site under a satellite subset."""
        rows = self._subset(sat_indices)[site_index]
        if rows.shape[0] == 0:
            return np.zeros(self.n_times, dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=0)
        return np.unpackbits(packed_or)[: self.n_times].astype(bool)

    def site_masks(self, sat_indices=None) -> np.ndarray:
        """Boolean coverage masks (S, T) for all sites under a subset."""
        rows = self._subset(sat_indices)
        if rows.shape[1] == 0:
            return np.zeros((self.n_sites, self.n_times), dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=1)  # (S, bytes)
        return np.unpackbits(packed_or, axis=1)[:, : self.n_times].astype(bool)

    def coverage_fractions(self, sat_indices=None) -> np.ndarray:
        """Covered fraction per site (S,) without unpacking full masks."""
        rows = self._subset(sat_indices)
        if rows.shape[1] == 0:
            return np.zeros(self.n_sites)
        counts = backends.default_backend().or_popcount(rows, axis=1)
        return counts / float(self.n_times)

    def _subset2(self, sat_indices, site_indices) -> np.ndarray:
        rows = self.packed
        if site_indices is not None:
            rows = rows[self._as_index_array(site_indices)]
        if sat_indices is not None:
            rows = rows[:, self._as_index_array(sat_indices), :]
        return rows

    def satellite_active_fractions(
        self, sat_indices=None, site_indices=None
    ) -> np.ndarray:
        """Active fraction per satellite (any selected site visible).

        ``site_indices`` restricts which sites count as demand (the Fig. 3
        sweep serves the top-k cities only); default is all sites.  An empty
        site selection means no demand anywhere: every satellite's active
        fraction is zero.
        """
        rows = self._subset2(sat_indices, site_indices)
        if rows.shape[0] == 0 or rows.shape[1] == 0:
            return np.zeros(rows.shape[1])
        counts = backends.default_backend().or_popcount(rows, axis=0)
        return counts / float(self.n_times)

    def satellite_masks(self, sat_indices=None, site_indices=None) -> np.ndarray:
        """Boolean activity masks (N_subset, T): any selected site sees the
        satellite.  An empty site selection yields all-False masks."""
        rows = self._subset2(sat_indices, site_indices)
        if rows.shape[0] == 0 or rows.shape[1] == 0:
            return np.zeros((rows.shape[1], self.n_times), dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=0)
        return np.unpackbits(packed_or, axis=1)[:, : self.n_times].astype(bool)


def packed_visibility(
    constellation: ConstellationLike,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    chunk_size: Optional[int] = None,
    geometry: Optional[SiteGeometry] = None,
    cull: bool = True,
    out: Optional[np.ndarray] = None,
) -> PackedVisibility:
    """Compute a :class:`PackedVisibility` for a pool of satellites.

    Streams: one (S, N, chunk) slab is packed at a time, so peak memory is
    the packed result plus O(S·N·chunk) transients — the full boolean
    tensor is never held.  The chunk size defaults to
    :data:`DEFAULT_CHUNK_SIZE` (wide), not the adaptive streaming default:
    the packed tensor is a long-lived cache whose thousands of downstream
    gather-heavy reductions are measurably (~2x on Fig. 3) faster when the
    build's transients are few and large — small-chunk builds leave the
    process allocator in a regime where every big reduction temporary is
    freshly mapped and page-faulted.  Either way the chunk is rounded down
    to a multiple of 8 so chunks pack cleanly; the final partial chunk is
    zero-padded (padding bits read "not visible").

    ``geometry`` reuses a cached :class:`SiteGeometry`; ``out`` packs into
    preallocated uint8 storage (e.g. a shared-memory view — see
    :func:`repro.runner.shared.ensure_shared_visibility`).
    """
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if geometry is None:
        geometry = SiteGeometry(sites, grid)
    plan = kernels.plan_stream(
        _as_propagator(constellation),
        geometry,
        grid,
        chunk_size=chunk_size,
        cull=cull,
        pack=True,
    )
    packed = kernels.stream_packed_bits(plan, out=out)
    return PackedVisibility(packed, grid.count, grid)
