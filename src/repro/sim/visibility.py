"""Vectorized satellite-ground visibility.

The coverage experiments need, for S ground sites, N satellites and T time
samples, the boolean visibility tensor ``visible[s, n, t]``.  Computing it
through the full topocentric transform would be exact but slow; instead we
use the classical spherical-geometry equivalence (see
:mod:`repro.orbits.topocentric`):

    elevation(site, sat) >= mask
        <=>  central_angle(site_dir, sat_dir) <= psi(r_sat, R_site, mask)
        <=>  dot(unit_site, unit_sat) >= cos(psi)

where ``unit_site``/``unit_sat`` are geocentric unit vectors in a common
frame.  Both sides are rotated into ECI (sites rotate with Earth, satellites
come out of the propagator in ECI), so no per-satellite frame conversion is
needed.  Time is processed in chunks to bound peak memory.

The threshold ``psi`` is computed from each satellite's semi-major axis; for
the near-circular orbits of LEO constellations (e < 0.02) the instantaneous
radius differs from ``a`` by under ~1%, shifting footprint edges by a couple
of km — far below the time-step quantization of contact edges.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.constellation.satellite import Constellation
from repro.obs import get_logger, metrics
from repro.obs.trace import span
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import gmst_rad
from repro.orbits.propagator import BatchPropagator
from repro.ground.sites import GroundSite
from repro.sim.clock import TimeGrid

_LOG = get_logger(__name__)

_PAIRS = metrics.counter("sim.visibility.pairs")
_SAMPLES_TOTAL = metrics.counter("sim.visibility.pair_samples")
_SAMPLES_VISIBLE = metrics.counter("sim.visibility.pair_samples_visible")
_PASS_RATE = metrics.gauge("sim.visibility.mask_pass_rate")

#: Default number of time samples processed per chunk.  2048 samples of a
#: 2000-satellite constellation peak at ~100 MB of float64 intermediates.
DEFAULT_CHUNK_SIZE = 2048

ConstellationLike = Union[Constellation, Sequence[OrbitalElements], BatchPropagator]


def _record_visibility_metrics(
    n_sites: int, n_sats: int, n_times: int, visible_samples: int
) -> None:
    """Account one visibility computation: pair counts and mask pass rate."""
    pairs = n_sites * n_sats
    samples = pairs * n_times
    _PAIRS.inc(pairs)
    _SAMPLES_TOTAL.inc(samples)
    _SAMPLES_VISIBLE.inc(visible_samples)
    if samples:
        _PASS_RATE.set(visible_samples / samples)
    _LOG.debug(
        "visibility: %d sites x %d sats x %d steps, mask pass rate %.4f",
        n_sites, n_sats, n_times, visible_samples / samples if samples else 0.0,
    )


def _as_propagator(constellation: ConstellationLike) -> BatchPropagator:
    if isinstance(constellation, BatchPropagator):
        return constellation
    if isinstance(constellation, Constellation):
        return BatchPropagator(constellation.elements)
    return BatchPropagator(list(constellation))


def coverage_cos_thresholds(
    orbital_radii_m: np.ndarray,
    site_radii_m: np.ndarray,
    min_elevation_deg: np.ndarray,
) -> np.ndarray:
    """Vectorized cos(psi) thresholds for (site, satellite) pairs.

    Args:
        orbital_radii_m: (N,) satellite orbital radii.
        site_radii_m: (S,) geocentric site radii.
        min_elevation_deg: (S,) per-site elevation masks.

    Returns:
        (S, N) array of cosine thresholds: a satellite is visible from a site
        when the dot product of their geocentric unit vectors meets or
        exceeds the threshold.
    """
    radii = np.asarray(orbital_radii_m, dtype=np.float64)[None, :]
    site_radii = np.asarray(site_radii_m, dtype=np.float64)[:, None]
    masks = np.radians(np.asarray(min_elevation_deg, dtype=np.float64))[:, None]
    if np.any(radii <= site_radii):
        raise ValueError("orbital radius must exceed the site radius")
    psi = np.arccos(np.clip(site_radii / radii * np.cos(masks), -1.0, 1.0)) - masks
    return np.cos(psi)


class VisibilityEngine:
    """Computes visibility tensors over a time grid.

    The engine is stateless with respect to constellations: instantiate once
    per time grid and reuse it for many constellation samples (the
    Monte-Carlo experiments do exactly that).

    Example:
        >>> from repro.sim import TimeGrid, VisibilityEngine
        >>> engine = VisibilityEngine(TimeGrid.hours(3.0))
        >>> # visible = engine.visibility(constellation, [site])
    """

    def __init__(self, grid: TimeGrid, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.grid = grid
        self.chunk_size = chunk_size

    def _site_units_eci(self, sites: Sequence[GroundSite], times_s: np.ndarray) -> np.ndarray:
        """Geocentric unit directions of sites in ECI at each time: (S, T, 3)."""
        units_ecef = np.stack([site.unit_ecef for site in sites])  # (S, 3)
        theta = gmst_rad(times_s, self.grid.gmst_at_epoch_rad)  # (T,)
        cos_t = np.cos(theta)
        sin_t = np.sin(theta)
        x = units_ecef[:, 0][:, None]
        y = units_ecef[:, 1][:, None]
        out = np.empty((units_ecef.shape[0], times_s.size, 3))
        # ECEF -> ECI is a rotation by +theta about z.
        out[..., 0] = cos_t * x - sin_t * y
        out[..., 1] = sin_t * x + cos_t * y
        out[..., 2] = units_ecef[:, 2][:, None]
        return out

    def visibility(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
    ) -> np.ndarray:
        """Full visibility tensor.

        Args:
            constellation: A :class:`Constellation`, element list, or
                prebuilt :class:`BatchPropagator`.
            sites: Ground sites (terminals or stations).

        Returns:
            Boolean array of shape (S, N, T).
        """
        if not sites:
            raise ValueError("at least one ground site is required")
        propagator = _as_propagator(constellation)
        site_radii = np.array(
            [np.linalg.norm(site.position_ecef) for site in sites]
        )
        masks = np.array([site.min_elevation_deg for site in sites])
        thresholds = coverage_cos_thresholds(
            propagator.semi_major_axis_m, site_radii, masks
        )  # (S, N)

        total = self.grid.count
        visible = np.empty((len(sites), propagator.count, total), dtype=bool)
        with span("visibility.tensor"):
            offset = 0
            for chunk_times in self.grid.chunks(self.chunk_size):
                sat_units = propagator.unit_positions_eci(chunk_times)  # (N, Tc, 3)
                site_units = self._site_units_eci(sites, chunk_times)  # (S, Tc, 3)
                dots = np.einsum("ntk,stk->snt", sat_units, site_units, optimize=True)
                visible[:, :, offset : offset + chunk_times.size] = (
                    dots >= thresholds[:, :, None]
                )
                offset += chunk_times.size
        _record_visibility_metrics(
            len(sites), propagator.count, total, np.count_nonzero(visible)
        )
        return visible

    def site_coverage(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
    ) -> np.ndarray:
        """Per-site coverage mask: (S, T) — true when any satellite is visible."""
        return self.visibility(constellation, sites).any(axis=1)

    def satellite_activity(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
    ) -> np.ndarray:
        """Per-satellite activity mask: (N, T) — true when any site is visible.

        This is the paper's Fig. 3 notion of a satellite being "connected to a
        user terminal"; idle time is the complement.
        """
        return self.visibility(constellation, sites).any(axis=0)

    def visible_counts(
        self,
        constellation: ConstellationLike,
        sites: Sequence[GroundSite],
    ) -> np.ndarray:
        """Number of visible satellites per site per time: (S, T) ints."""
        return self.visibility(constellation, sites).sum(axis=1)


def visibility_matrix(
    constellation: ConstellationLike,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Convenience wrapper: one-shot visibility tensor (S, N, T)."""
    return VisibilityEngine(grid, chunk_size=chunk_size).visibility(
        constellation, sites
    )


#: Lookup table mapping a byte value to its popcount; used to count covered
#: samples in packed masks without unpacking.
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint32)


class PackedVisibility:
    """A bit-packed visibility tensor for Monte-Carlo subset experiments.

    The paper's experiments repeatedly ask: "for a random subset of this
    satellite pool, what is the coverage at these sites?"  Propagating the
    pool once and answering each run with boolean reductions is orders of
    magnitude cheaper than re-propagating.  Packing 8 time samples per byte
    keeps a full Starlink-scale pool x 21 sites x one week at ~120 MB.

    The time axis is padded to a byte boundary with zero (= not visible)
    bits, which is neutral for every OR/popcount reduction as long as counts
    use the true sample count ``n_times``.

    Build instances with :meth:`VisibilityEngine.packed_visibility`.
    """

    def __init__(self, packed: np.ndarray, n_times: int, grid: TimeGrid) -> None:
        if packed.ndim != 3 or packed.dtype != np.uint8:
            raise ValueError("packed must be a (S, N, ceil(T/8)) uint8 array")
        if packed.shape[2] * 8 < n_times:
            raise ValueError("packed array too short for n_times")
        self.packed = packed
        self.n_times = n_times
        self.grid = grid

    @property
    def n_sites(self) -> int:
        return self.packed.shape[0]

    @property
    def n_satellites(self) -> int:
        return self.packed.shape[1]

    @staticmethod
    def _as_index_array(indices) -> np.ndarray:
        """Normalize a selection to an integer index array.

        A plain empty list arrives as a float64 array, which numpy rejects
        as an index; coerce empty selections to an integer dtype so "select
        nothing" is a valid (zero-result) query rather than an IndexError.
        """
        array = np.asarray(indices)
        if array.size == 0:
            return np.empty(0, dtype=np.intp)
        return array

    def _subset(self, sat_indices) -> np.ndarray:
        if sat_indices is None:
            return self.packed
        return self.packed[:, self._as_index_array(sat_indices), :]

    def site_mask(self, site_index: int, sat_indices=None) -> np.ndarray:
        """Boolean coverage mask (T,) of one site under a satellite subset."""
        rows = self._subset(sat_indices)[site_index]
        if rows.shape[0] == 0:
            return np.zeros(self.n_times, dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=0)
        return np.unpackbits(packed_or)[: self.n_times].astype(bool)

    def site_masks(self, sat_indices=None) -> np.ndarray:
        """Boolean coverage masks (S, T) for all sites under a subset."""
        rows = self._subset(sat_indices)
        if rows.shape[1] == 0:
            return np.zeros((self.n_sites, self.n_times), dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=1)  # (S, bytes)
        return np.unpackbits(packed_or, axis=1)[:, : self.n_times].astype(bool)

    def coverage_fractions(self, sat_indices=None) -> np.ndarray:
        """Covered fraction per site (S,) without unpacking full masks."""
        rows = self._subset(sat_indices)
        if rows.shape[1] == 0:
            return np.zeros(self.n_sites)
        packed_or = np.bitwise_or.reduce(rows, axis=1)
        counts = _POPCOUNT[packed_or].sum(axis=1)
        return counts / float(self.n_times)

    def _subset2(self, sat_indices, site_indices) -> np.ndarray:
        rows = self.packed
        if site_indices is not None:
            rows = rows[self._as_index_array(site_indices)]
        if sat_indices is not None:
            rows = rows[:, self._as_index_array(sat_indices), :]
        return rows

    def satellite_active_fractions(
        self, sat_indices=None, site_indices=None
    ) -> np.ndarray:
        """Active fraction per satellite (any selected site visible).

        ``site_indices`` restricts which sites count as demand (the Fig. 3
        sweep serves the top-k cities only); default is all sites.  An empty
        site selection means no demand anywhere: every satellite's active
        fraction is zero.
        """
        rows = self._subset2(sat_indices, site_indices)
        if rows.shape[0] == 0 or rows.shape[1] == 0:
            return np.zeros(rows.shape[1])
        packed_or = np.bitwise_or.reduce(rows, axis=0)  # (N_subset, bytes)
        counts = _POPCOUNT[packed_or].sum(axis=1)
        return counts / float(self.n_times)

    def satellite_masks(self, sat_indices=None, site_indices=None) -> np.ndarray:
        """Boolean activity masks (N_subset, T): any selected site sees the
        satellite.  An empty site selection yields all-False masks."""
        rows = self._subset2(sat_indices, site_indices)
        if rows.shape[0] == 0 or rows.shape[1] == 0:
            return np.zeros((rows.shape[1], self.n_times), dtype=bool)
        packed_or = np.bitwise_or.reduce(rows, axis=0)
        return np.unpackbits(packed_or, axis=1)[:, : self.n_times].astype(bool)


def _pack_time_axis(visible_chunk: np.ndarray) -> np.ndarray:
    """Pack a boolean (S, N, Tc) chunk along time into uint8 (Tc must be %8==0)."""
    return np.packbits(visible_chunk, axis=2)


def packed_visibility(
    constellation: ConstellationLike,
    sites: Sequence[GroundSite],
    grid: TimeGrid,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> PackedVisibility:
    """Compute a :class:`PackedVisibility` for a pool of satellites.

    The chunk size is rounded down to a multiple of 8 so chunks pack cleanly;
    the final partial chunk is zero-padded (padding bits read "not visible").
    """
    engine = VisibilityEngine(grid, chunk_size=max(8, chunk_size // 8 * 8))
    propagator = _as_propagator(constellation)
    site_radii = np.array([np.linalg.norm(site.position_ecef) for site in sites])
    masks = np.array([site.min_elevation_deg for site in sites])
    thresholds = coverage_cos_thresholds(
        propagator.semi_major_axis_m, site_radii, masks
    )

    total = grid.count
    n_bytes = (total + 7) // 8
    packed = np.zeros((len(sites), propagator.count, n_bytes), dtype=np.uint8)
    with span("visibility.pack"):
        offset = 0
        for chunk_times in grid.chunks(engine.chunk_size):
            sat_units = propagator.unit_positions_eci(chunk_times)
            site_units = engine._site_units_eci(sites, chunk_times)
            dots = np.einsum("ntk,stk->snt", sat_units, site_units, optimize=True)
            visible = dots >= thresholds[:, :, None]
            byte_offset = offset // 8
            chunk_packed = np.packbits(visible, axis=2)
            packed[:, :, byte_offset : byte_offset + chunk_packed.shape[2]] = chunk_packed
            offset += chunk_times.size
    # Visible-bit accounting via popcount on the packed bytes (padding bits
    # are zero, so they never inflate the count).
    _record_visibility_metrics(
        len(sites), propagator.count, total, int(_POPCOUNT[packed].sum())
    )
    return PackedVisibility(packed, total, grid)
