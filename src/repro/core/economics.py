"""Constellation economics (§1-§2's cost argument).

"Amazon and Starlink have projected that building fully operational LEO
networks requires investments between 10-30 billion dollars."

This module prices constellations with a transparent cost model so the
paper's headline comparison — independent national constellations vs an
MP-LEO contribution — becomes a computation.  Defaults are order-of-
magnitude public figures (Falcon-9-class rideshare launch, Starlink-class
satellite unit cost); every knob is a parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CostModel:
    """Per-satellite lifecycle cost parameters (USD).

    Attributes:
        satellite_unit_cost: Build cost per satellite.
        launch_cost_per_satellite: Launch cost amortized per satellite
            (rideshare economics).
        ground_segment_fixed: Fixed ground-segment build-out per operator.
        annual_operations_per_satellite: Yearly operations cost.
        satellite_lifetime_years: Replacement period.
    """

    satellite_unit_cost: float = 1.0e6
    launch_cost_per_satellite: float = 1.5e6
    ground_segment_fixed: float = 50.0e6
    annual_operations_per_satellite: float = 0.1e6
    satellite_lifetime_years: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "satellite_unit_cost",
            "launch_cost_per_satellite",
            "ground_segment_fixed",
            "annual_operations_per_satellite",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.satellite_lifetime_years <= 0.0:
            raise ValueError("lifetime must be positive")

    def deployment_cost(self, satellite_count: int) -> float:
        """Up-front cost of deploying a constellation.

        Raises:
            ValueError: On a negative count.
        """
        if satellite_count < 0:
            raise ValueError("count must be non-negative")
        per_satellite = self.satellite_unit_cost + self.launch_cost_per_satellite
        return satellite_count * per_satellite + self.ground_segment_fixed

    def annual_cost(self, satellite_count: int) -> float:
        """Steady-state yearly cost: operations plus replacement launches."""
        if satellite_count < 0:
            raise ValueError("count must be non-negative")
        replacement = (
            satellite_count
            / self.satellite_lifetime_years
            * (self.satellite_unit_cost + self.launch_cost_per_satellite)
        )
        return satellite_count * self.annual_operations_per_satellite + replacement

    def total_cost(self, satellite_count: int, years: float) -> float:
        """Deployment plus ``years`` of steady-state operation."""
        if years < 0.0:
            raise ValueError("years must be non-negative")
        return self.deployment_cost(satellite_count) + years * self.annual_cost(
            satellite_count
        )


@dataclass(frozen=True)
class DeploymentComparison:
    """Go-it-alone vs MP-LEO cost for the same coverage outcome."""

    coverage_target: float
    go_it_alone_satellites: int
    mp_leo_contribution: int
    go_it_alone_cost: float
    mp_leo_cost: float

    @property
    def savings(self) -> float:
        return self.go_it_alone_cost - self.mp_leo_cost

    @property
    def cost_ratio(self) -> float:
        if self.mp_leo_cost == 0.0:
            return float("inf")
        return self.go_it_alone_cost / self.mp_leo_cost


def compare_deployments(
    coverage_target: float,
    go_it_alone_satellites: int,
    mp_leo_contribution: int,
    model: CostModel = CostModel(),
    horizon_years: float = 10.0,
) -> DeploymentComparison:
    """Price the paper's comparison: own constellation vs MP-LEO stake.

    Both alternatives deliver the same coverage (the MP-LEO network as a
    whole matches the go-it-alone constellation); the participant pays only
    for its contribution plus its own ground segment.

    Raises:
        ValueError: If the contribution exceeds the go-it-alone size (that
            would not be a saving) or counts are non-positive.
    """
    if go_it_alone_satellites <= 0 or mp_leo_contribution <= 0:
        raise ValueError("satellite counts must be positive")
    if mp_leo_contribution > go_it_alone_satellites:
        raise ValueError("contribution exceeds the go-it-alone constellation")
    return DeploymentComparison(
        coverage_target=coverage_target,
        go_it_alone_satellites=go_it_alone_satellites,
        mp_leo_contribution=mp_leo_contribution,
        go_it_alone_cost=model.total_cost(go_it_alone_satellites, horizon_years),
        mp_leo_cost=model.total_cost(mp_leo_contribution, horizon_years),
    )


def cost_per_delivered_gbps_hour(
    satellite_count: int,
    mean_utilization: float,
    per_satellite_capacity_gbps: float,
    model: CostModel = CostModel(),
    horizon_years: float = 10.0,
) -> float:
    """Lifecycle cost per delivered Gbps-hour (the waste metric, priced).

    A constellation that is idle 99% of the time (Fig. 3's one-city case)
    delivers 1% of its capacity-hours; this converts that waste into
    dollars.

    Raises:
        ValueError: On out-of-range utilization or non-positive capacity.
    """
    if not 0.0 < mean_utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    if per_satellite_capacity_gbps <= 0.0:
        raise ValueError("capacity must be positive")
    total_cost = model.total_cost(satellite_count, horizon_years)
    delivered_gbps_hours = (
        satellite_count
        * per_satellite_capacity_gbps
        * mean_utilization
        * horizon_years
        * 365.0
        * 24.0
    )
    return total_cost / delivered_gbps_hours
