"""Double-auction market clearing (§4's market-design open question).

"How much should satellite operators charge for data access? ... How do
users choose between competing satellites after the deployment reaches
complete coverage?  These game theoretic explorations of market design are
interesting open questions."

This module implements the textbook answer for a spot capacity market: a
uniform-price sealed-bid **k-double auction**.  Buyers (consumer parties)
submit bids, sellers (satellite operators with spare capacity) submit asks;
the market crosses the sorted curves, trades the efficient quantity, and
clears everyone at one price between the marginal bid and ask.

Properties the tests verify: the clearing price lies between the marginal
ask and bid, trades are individually rational (no buyer pays above its bid,
no seller receives below its ask), and the traded quantity maximizes
surplus for uniform pricing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Bid:
    """A buyer's demand: up to ``quantity`` at up to ``price`` per unit."""

    party: str
    quantity: float
    price: float

    def __post_init__(self) -> None:
        if self.quantity <= 0.0:
            raise ValueError(f"quantity must be positive, got {self.quantity}")
        if self.price < 0.0:
            raise ValueError(f"price must be non-negative, got {self.price}")


@dataclass(frozen=True)
class Ask:
    """A seller's offer: up to ``quantity`` at no less than ``price``."""

    party: str
    quantity: float
    price: float

    def __post_init__(self) -> None:
        if self.quantity <= 0.0:
            raise ValueError(f"quantity must be positive, got {self.quantity}")
        if self.price < 0.0:
            raise ValueError(f"price must be non-negative, got {self.price}")


@dataclass(frozen=True)
class Trade:
    """One matched buyer-seller allocation at the clearing price."""

    buyer: str
    seller: str
    quantity: float
    price: float

    @property
    def value(self) -> float:
        return self.quantity * self.price


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of one clearing round."""

    clearing_price: Optional[float]
    traded_quantity: float
    trades: Tuple[Trade, ...]

    @property
    def cleared(self) -> bool:
        return self.clearing_price is not None and self.traded_quantity > 0.0

    def buyer_quantity(self, party: str) -> float:
        return sum(trade.quantity for trade in self.trades if trade.buyer == party)

    def seller_quantity(self, party: str) -> float:
        return sum(trade.quantity for trade in self.trades if trade.seller == party)


def clear_double_auction(
    bids: Sequence[Bid],
    asks: Sequence[Ask],
    k: float = 0.5,
) -> AuctionResult:
    """Run a uniform-price k-double auction.

    Args:
        bids: Buyer bids (any order).
        asks: Seller asks (any order).
        k: Where the clearing price sits between the marginal ask (k=0) and
            the marginal bid (k=1).  The classic split-the-difference
            auction uses k=0.5.

    Returns:
        The clearing result; ``clearing_price`` is None when no bid meets
        any ask.

    Raises:
        ValueError: If ``k`` is outside [0, 1].
    """
    if not 0.0 <= k <= 1.0:
        raise ValueError(f"k must be in [0, 1], got {k}")
    if not bids or not asks:
        return AuctionResult(None, 0.0, ())

    # Demand curve: bids by descending price; supply: asks ascending.
    demand = sorted(bids, key=lambda bid: (-bid.price, bid.party))
    supply = sorted(asks, key=lambda ask: (ask.price, ask.party))

    # One walk over both curves: record matched quanta and the marginal
    # prices; the uniform price is applied to every match afterwards.
    # Exhaustion uses an epsilon so float residue never drags a spent order
    # into a further (price-incompatible) match.
    epsilon = 1e-12
    matches: List[Tuple[str, str, float]] = []
    traded = 0.0
    marginal_bid = None
    marginal_ask = None
    bid_index = ask_index = 0
    bid_left = demand[0].quantity
    ask_left = supply[0].quantity
    while bid_index < len(demand) and ask_index < len(supply):
        bid = demand[bid_index]
        ask = supply[ask_index]
        if bid.price < ask.price:
            break
        quantum = min(bid_left, ask_left)
        if quantum > epsilon:
            matches.append((bid.party, ask.party, quantum))
            traded += quantum
            marginal_bid = bid.price
            marginal_ask = ask.price
        bid_left -= quantum
        ask_left -= quantum
        if bid_left <= epsilon:
            bid_index += 1
            if bid_index < len(demand):
                bid_left = demand[bid_index].quantity
        if ask_left <= epsilon:
            ask_index += 1
            ask_index_valid = ask_index < len(supply)
            if ask_index_valid:
                ask_left = supply[ask_index].quantity

    if traded == 0.0 or marginal_bid is None or marginal_ask is None:
        return AuctionResult(None, 0.0, ())
    price = marginal_ask + k * (marginal_bid - marginal_ask)

    trades = tuple(
        Trade(buyer=buyer, seller=seller, quantity=quantum, price=price)
        for buyer, seller, quantum in matches
    )
    return AuctionResult(
        clearing_price=price,
        traded_quantity=traded,
        trades=trades,
    )


def asks_from_spare_capacity(
    spare_mbps_by_party: dict,
    reserve_price: float,
) -> List[Ask]:
    """Turn measured spare capacity (e.g. from the engine) into asks.

    Parties with zero spare capacity are omitted.

    Raises:
        ValueError: On a negative reserve price.
    """
    if reserve_price < 0.0:
        raise ValueError("reserve price must be non-negative")
    return [
        Ask(party=party, quantity=spare, price=reserve_price)
        for party, spare in sorted(spare_mbps_by_party.items())
        if spare > 0.0
    ]
