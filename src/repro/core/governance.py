"""Multi-party control (§4).

The paper's open question: "Space-based trusted execution environments ...
can potentially be utilized to provide cryptographic guarantees on what runs
on the satellite and how they are controlled (e.g., by consensus from
multiple parties)."

This module models the *policy* layer of that idea: satellite commands that
require stake-weighted approval before a (simulated) TEE would execute them.
It captures the paper's trust property — a small coalition cannot deny
service network-wide — without pretending to implement cryptography.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class CommandKind(enum.Enum):
    """Commands whose blast radius justifies multi-party approval."""

    DENY_REGION = "deny_region"  # Stop serving a geographic region.
    DEORBIT = "deorbit"
    SOFTWARE_UPDATE = "software_update"
    POWER_SAFE_MODE = "power_safe_mode"


#: Approval thresholds (fraction of total stake) per command kind.  Region
#: denial — the abuse the paper is most worried about — needs a supermajority.
DEFAULT_THRESHOLDS: Dict[CommandKind, float] = {
    CommandKind.DENY_REGION: 2.0 / 3.0,
    CommandKind.DEORBIT: 0.5,
    CommandKind.SOFTWARE_UPDATE: 0.5,
    CommandKind.POWER_SAFE_MODE: 0.25,
}


class GovernanceError(RuntimeError):
    """Raised on invalid votes or proposals."""


@dataclass
class Proposal:
    """One pending command awaiting stake-weighted approval."""

    proposal_id: int
    kind: CommandKind
    proposer: str
    target: str  # Satellite id or region name, depending on kind.
    approvals: Set[str] = field(default_factory=set)
    rejections: Set[str] = field(default_factory=set)


class GovernanceBoard:
    """Stake-weighted voting over satellite commands.

    Example:
        >>> board = GovernanceBoard({"a": 0.5, "b": 0.3, "c": 0.2})
        >>> proposal = board.propose("a", CommandKind.DENY_REGION, "taipei")
        >>> board.vote(proposal.proposal_id, "a", approve=True)
        >>> board.is_approved(proposal.proposal_id)
        False
    """

    def __init__(
        self,
        stakes: Dict[str, float],
        thresholds: Optional[Dict[CommandKind, float]] = None,
    ) -> None:
        if not stakes:
            raise GovernanceError("at least one party is required")
        if any(stake < 0.0 for stake in stakes.values()):
            raise GovernanceError("stakes must be non-negative")
        total = sum(stakes.values())
        if total <= 0.0:
            raise GovernanceError("total stake must be positive")
        self.stakes = {party: stake / total for party, stake in stakes.items()}
        self.thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            self.thresholds.update(thresholds)
        self._proposals: Dict[int, Proposal] = {}
        self._next_id = 0

    def propose(self, proposer: str, kind: CommandKind, target: str) -> Proposal:
        """Open a proposal (the proposer implicitly approves).

        Raises:
            GovernanceError: If the proposer is not a stakeholder.
        """
        if proposer not in self.stakes:
            raise GovernanceError(f"unknown party {proposer!r}")
        proposal = Proposal(
            proposal_id=self._next_id,
            kind=kind,
            proposer=proposer,
            target=target,
            approvals={proposer},
        )
        self._proposals[proposal.proposal_id] = proposal
        self._next_id += 1
        return proposal

    def vote(self, proposal_id: int, party: str, approve: bool) -> None:
        """Cast or change a vote.

        Raises:
            GovernanceError: On unknown proposal or non-stakeholder.
        """
        proposal = self._proposals.get(proposal_id)
        if proposal is None:
            raise GovernanceError(f"unknown proposal {proposal_id}")
        if party not in self.stakes:
            raise GovernanceError(f"unknown party {party!r}")
        proposal.approvals.discard(party)
        proposal.rejections.discard(party)
        if approve:
            proposal.approvals.add(party)
        else:
            proposal.rejections.add(party)

    def approval_stake(self, proposal_id: int) -> float:
        """Total stake that has approved a proposal."""
        proposal = self._proposals.get(proposal_id)
        if proposal is None:
            raise GovernanceError(f"unknown proposal {proposal_id}")
        return sum(self.stakes[party] for party in proposal.approvals)

    def is_approved(self, proposal_id: int) -> bool:
        """Whether the proposal has cleared its command kind's threshold."""
        proposal = self._proposals.get(proposal_id)
        if proposal is None:
            raise GovernanceError(f"unknown proposal {proposal_id}")
        return self.approval_stake(proposal_id) >= self.thresholds[proposal.kind]

    def max_unilateral_damage(self, coalition: Set[str]) -> Dict[CommandKind, bool]:
        """Which command kinds a coalition could force with only its own stake.

        The paper's trust claim in executable form: for any coalition, region
        denial requires its combined stake to reach the supermajority
        threshold.
        """
        coalition_stake = sum(self.stakes.get(party, 0.0) for party in coalition)
        return {
            kind: coalition_stake >= threshold
            for kind, threshold in self.thresholds.items()
        }
