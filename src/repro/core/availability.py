"""Availability planning (§2's five-nines remark).

"In practice, networks aim for five-nine (99.999%) availability, which
would require even larger constellations."

This module turns a measured coverage-vs-size curve (the Fig. 2 sweep) into
planning answers: how many satellites buy a given availability, and what a
party's contribution must be under an MP-LEO sharing ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Conventional availability classes (fraction of time with coverage).
AVAILABILITY_CLASSES = {
    "two-nines": 0.99,
    "three-nines": 0.999,
    "four-nines": 0.9999,
    "five-nines": 0.99999,
}


def satellites_for_availability(
    target: float,
    coverage_by_count: Sequence[Tuple[int, float]],
) -> Optional[int]:
    """Smallest constellation size whose measured coverage meets a target.

    Args:
        target: Required covered fraction in (0, 1).
        coverage_by_count: Measured (size, coverage) curve, e.g. from the
            Fig. 2 experiment.

    Returns:
        The smallest adequate size, or None if no measured point reaches
        the target (the planner must extrapolate — see
        :func:`extrapolate_size_for_availability`).

    Raises:
        ValueError: On an empty curve or a target outside (0, 1).
    """
    if not coverage_by_count:
        raise ValueError("curve must be non-empty")
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    for size, coverage in sorted(coverage_by_count):
        if coverage >= target:
            return size
    return None


def extrapolate_size_for_availability(
    target: float,
    coverage_by_count: Sequence[Tuple[int, float]],
) -> int:
    """Estimate the size needed for a target beyond the measured curve.

    Models uncovered probability as exponential in constellation size
    (independent-footprint approximation: P(gap) ~ (1-p)^N), fits the decay
    rate to the measured tail, and solves for the target.

    Raises:
        ValueError: If fewer than two points have partial coverage to fit.
    """
    measured = satellites_for_availability(target, coverage_by_count)
    if measured is not None:
        return measured
    # Fit log(1 - coverage) = a + b * size on points with 0 < coverage < 1.
    sizes, gaps = [], []
    for size, coverage in sorted(coverage_by_count):
        if 0.0 < coverage < 1.0:
            sizes.append(float(size))
            gaps.append(math.log(1.0 - coverage))
    if len(sizes) < 2:
        raise ValueError("need at least two partial-coverage points to fit")
    slope, intercept = np.polyfit(sizes, gaps, 1)
    if slope >= 0.0:
        raise ValueError("coverage curve is not improving with size")
    required = (math.log(1.0 - target) - intercept) / slope
    return int(math.ceil(required))


@dataclass(frozen=True)
class ContributionPlan:
    """What an MP-LEO participant must contribute for a coverage target."""

    target_availability: float
    network_size: int
    party_count: int
    contribution_per_party: int
    go_it_alone_size: int

    @property
    def cost_reduction_factor(self) -> float:
        """How much cheaper joining is than going it alone."""
        if self.contribution_per_party == 0:
            return float("inf")
        return self.go_it_alone_size / self.contribution_per_party


def mp_leo_contribution_plan(
    target: float,
    coverage_by_count: Sequence[Tuple[int, float]],
    party_count: int,
) -> ContributionPlan:
    """Plan an equal-stakes MP-LEO deployment for an availability target.

    Raises:
        ValueError: On a non-positive party count.
    """
    if party_count <= 0:
        raise ValueError(f"party count must be positive, got {party_count}")
    network_size = extrapolate_size_for_availability(target, coverage_by_count)
    per_party = int(math.ceil(network_size / party_count))
    return ContributionPlan(
        target_availability=target,
        network_size=network_size,
        party_count=party_count,
        contribution_per_party=per_party,
        go_it_alone_size=network_size,
    )
