"""The token ledger mediating MP-LEO settlements.

The paper (§3.2): "These financial exchanges can be mediated by centralized
or decentralized systems (e.g., cryptographic tokens)."  This module is the
accounting core either way: an append-only double-entry ledger with balances,
minting (for proof-of-coverage rewards and bootstrap incentives) and
transfers (for data-market settlements).  It deliberately models *economics*,
not consensus — consensus is a §4 open question handled in
:mod:`repro.core.governance`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class EntryKind(enum.Enum):
    MINT = "mint"
    TRANSFER = "transfer"
    BURN = "burn"


class LedgerError(RuntimeError):
    """Raised on invalid ledger operations (overdrafts, bad amounts)."""


@dataclass(frozen=True)
class LedgerEntry:
    """One immutable ledger record."""

    sequence: int
    kind: EntryKind
    amount: float
    debit: str  # Account debited ("" for mints).
    credit: str  # Account credited ("" for burns).
    memo: str = ""


class TokenLedger:
    """Append-only token ledger with non-negative balances.

    Example:
        >>> ledger = TokenLedger()
        >>> ledger.mint("taiwan", 100.0, memo="proof-of-coverage epoch 1")
        >>> ledger.transfer("taiwan", "korea", 25.0, memo="data settlement")
        >>> ledger.balance("korea")
        25.0
    """

    def __init__(self) -> None:
        self._balances: Dict[str, float] = {}
        self._entries: List[LedgerEntry] = []

    def _check_amount(self, amount: float) -> None:
        if not amount > 0.0:
            raise LedgerError(f"amount must be positive, got {amount}")

    def mint(self, account: str, amount: float, memo: str = "") -> LedgerEntry:
        """Create new tokens in an account (rewards, bootstrap issuance)."""
        self._check_amount(amount)
        if not account:
            raise LedgerError("account must be non-empty")
        self._balances[account] = self._balances.get(account, 0.0) + amount
        entry = LedgerEntry(
            sequence=len(self._entries),
            kind=EntryKind.MINT,
            amount=amount,
            debit="",
            credit=account,
            memo=memo,
        )
        self._entries.append(entry)
        return entry

    def transfer(
        self, debit: str, credit: str, amount: float, memo: str = ""
    ) -> LedgerEntry:
        """Move tokens between accounts.

        Raises:
            LedgerError: On overdraft or self-transfer.
        """
        self._check_amount(amount)
        if debit == credit:
            raise LedgerError("cannot transfer to the same account")
        if self.balance(debit) < amount:
            raise LedgerError(
                f"overdraft: {debit!r} has {self.balance(debit)}, needs {amount}"
            )
        self._balances[debit] -= amount
        self._balances[credit] = self._balances.get(credit, 0.0) + amount
        entry = LedgerEntry(
            sequence=len(self._entries),
            kind=EntryKind.TRANSFER,
            amount=amount,
            debit=debit,
            credit=credit,
            memo=memo,
        )
        self._entries.append(entry)
        return entry

    def burn(self, account: str, amount: float, memo: str = "") -> LedgerEntry:
        """Destroy tokens (fees, slashing misbehaving parties).

        Raises:
            LedgerError: On overdraft.
        """
        self._check_amount(amount)
        if self.balance(account) < amount:
            raise LedgerError(
                f"overdraft: {account!r} has {self.balance(account)}, needs {amount}"
            )
        self._balances[account] -= amount
        entry = LedgerEntry(
            sequence=len(self._entries),
            kind=EntryKind.BURN,
            amount=amount,
            debit=account,
            credit="",
            memo=memo,
        )
        self._entries.append(entry)
        return entry

    def balance(self, account: str) -> float:
        return self._balances.get(account, 0.0)

    def balances(self) -> Dict[str, float]:
        """All non-zero balances."""
        return {
            account: balance
            for account, balance in sorted(self._balances.items())
            if balance != 0.0
        }

    @property
    def total_supply(self) -> float:
        return sum(self._balances.values())

    @property
    def entries(self) -> List[LedgerEntry]:
        return list(self._entries)

    def verify(self) -> bool:
        """Replay all entries and confirm they reproduce current balances.

        The integrity check a decentralized implementation would do by
        consensus; here it guards against in-process mutation bugs.
        """
        replay: Dict[str, float] = {}
        for entry in self._entries:
            if entry.kind is EntryKind.MINT:
                replay[entry.credit] = replay.get(entry.credit, 0.0) + entry.amount
            elif entry.kind is EntryKind.TRANSFER:
                replay[entry.debit] = replay.get(entry.debit, 0.0) - entry.amount
                replay[entry.credit] = replay.get(entry.credit, 0.0) + entry.amount
            else:
                replay[entry.debit] = replay.get(entry.debit, 0.0) - entry.amount
        for account in set(replay) | set(self._balances):
            if abs(replay.get(account, 0.0) - self._balances.get(account, 0.0)) > 1e-9:
                return False
        return True
