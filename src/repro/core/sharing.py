"""Spare-capacity sharing accounting and the "coverage worth" metric.

The paper's §2 headline: "a participant contributing just 50 satellites can
get coverage worth over 1000 satellites by trading off their spare
capacities with others."  This module quantifies that trade:

* :func:`coverage_worth_multiplier` — how many go-it-alone satellites a
  party's *shared* coverage is worth.
* :func:`exchange_matrix` — who serves whom: the party-by-party matrix of
  traded capacity derived from engine sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import get_logger, metrics
from repro.obs import timeline as obs_timeline
from repro.sim.events import SessionEvent

_LOG = get_logger(__name__)

_MATCHED = metrics.counter("core.sharing.matched_sessions")
_UNMATCHED = metrics.counter("core.sharing.unmatched_sessions")


@dataclass(frozen=True)
class SharingUpside:
    """A party's gain from pooling vs going it alone."""

    party: str
    contributed_satellites: int
    alone_coverage_fraction: float
    shared_coverage_fraction: float
    equivalent_alone_satellites: int

    @property
    def coverage_multiplier(self) -> float:
        """Shared / alone coverage (guarding alone == 0)."""
        if self.alone_coverage_fraction == 0.0:
            return float("inf") if self.shared_coverage_fraction > 0.0 else 1.0
        return self.shared_coverage_fraction / self.alone_coverage_fraction

    @property
    def satellite_multiplier(self) -> float:
        """Equivalent satellites / contributed satellites (the 50-vs-1000 claim)."""
        if self.contributed_satellites == 0:
            return 0.0
        return self.equivalent_alone_satellites / self.contributed_satellites


def equivalent_satellite_count(
    target_coverage_fraction: float,
    coverage_by_count: Sequence[Tuple[int, float]],
) -> int:
    """Smallest go-it-alone constellation size achieving a coverage target.

    Args:
        target_coverage_fraction: Coverage to match.
        coverage_by_count: Monotone (satellite_count, coverage_fraction)
            calibration curve (e.g. the Fig. 2 sweep).

    Returns:
        The smallest count whose coverage is >= the target; if no point
        reaches it, returns the largest count in the curve (a lower bound).
    """
    if not coverage_by_count:
        raise ValueError("calibration curve must be non-empty")
    ordered = sorted(coverage_by_count)
    for count, coverage in ordered:
        if coverage >= target_coverage_fraction:
            return count
    return ordered[-1][0]


def sharing_upside(
    party: str,
    contributed: int,
    alone_coverage_fraction: float,
    shared_coverage_fraction: float,
    coverage_by_count: Sequence[Tuple[int, float]],
) -> SharingUpside:
    """Assemble the full upside record for one party."""
    return SharingUpside(
        party=party,
        contributed_satellites=contributed,
        alone_coverage_fraction=alone_coverage_fraction,
        shared_coverage_fraction=shared_coverage_fraction,
        equivalent_alone_satellites=equivalent_satellite_count(
            shared_coverage_fraction, coverage_by_count
        ),
    )


def coverage_worth_multiplier(
    contributed: int,
    shared_coverage_fraction: float,
    coverage_by_count: Sequence[Tuple[int, float]],
) -> float:
    """The paper's multiplier: equivalent satellites / contributed satellites."""
    if contributed <= 0:
        raise ValueError(f"contributed must be positive, got {contributed}")
    return (
        equivalent_satellite_count(shared_coverage_fraction, coverage_by_count)
        / contributed
    )


def exchange_matrix(
    sessions: Sequence[SessionEvent], parties: Sequence[str]
) -> np.ndarray:
    """Party-by-party traded volume: entry [i, j] = megabits party i's
    terminals consumed on party j's satellites (i != j; diagonal is own use).
    """
    index = {party: i for i, party in enumerate(parties)}
    matrix = np.zeros((len(parties), len(parties)))
    matched = 0
    for session in sessions:
        consumer = index.get(session.terminal_party)
        provider = index.get(session.sat_party)
        if consumer is None or provider is None:
            continue
        matrix[consumer, provider] += session.volume_megabits
        matched += 1
    _MATCHED.inc(matched)
    _UNMATCHED.inc(len(sessions) - matched)
    # Narrate the cross-party trades (run-level summary: one event per
    # ordered pair with nonzero traded volume; own use stays off the wire).
    for consumer_index, consumer in enumerate(parties):
        for provider_index, provider in enumerate(parties):
            if consumer_index == provider_index:
                continue
            volume = float(matrix[consumer_index, provider_index])
            if volume > 0.0:
                obs_timeline.emit(
                    obs_timeline.SHARING_TRADE,
                    0.0,
                    consumer,
                    party=consumer,
                    provider=provider,
                    megabits=volume,
                )
    if matched < len(sessions):
        _LOG.debug(
            "exchange matrix dropped %d sessions from unknown parties",
            len(sessions) - matched,
        )
    return matrix


def reciprocity_scores(matrix: np.ndarray) -> np.ndarray:
    """Per-party give/take balance in [-1, 1].

    +1 = pure provider (gives spare capacity, consumes none),
    -1 = pure consumer, 0 = balanced.  Diagonal (own use) is excluded.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    off = matrix - np.diag(np.diag(matrix))
    gives = off.sum(axis=0)  # Column j: everyone consuming on j's satellites.
    takes = off.sum(axis=1)  # Row i: i consuming on others' satellites.
    total = gives + takes
    with np.errstate(invalid="ignore", divide="ignore"):
        scores = np.where(total > 0.0, (gives - takes) / total, 0.0)
    return scores
