"""Bootstrapping sparse MP-LEO deployments (§4).

"Early participants contribute a small number of satellites, which do not
provide continuous coverage and, hence, find few customers. ... early sparse
MP-LEO deployments can provide global coverage for delay tolerant
applications (e.g., IoT and opportunistic high volume transfers) at lower
unit costs."

This module quantifies what a sparse constellation *can* sell:

* :func:`contact_wait_times_s` — the delay a delay-tolerant message waits at
  a site for the next satellite pass (the store-and-forward latency).
* :class:`DelayTolerantService` — checks a sparse constellation against an
  application's latency tolerance across sites.
* :func:`early_adopter_issuance` — Helium-style declining token issuance
  rewarding early contributors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sim.clock import TimeGrid


def contact_wait_times_s(mask: np.ndarray, step_s: float) -> np.ndarray:
    """Waiting time until the next contact, evaluated at every time step.

    Args:
        mask: 1-D boolean coverage timeline (True = satellite overhead).
        step_s: Sample spacing.

    Returns:
        (T,) array: at each step, seconds until coverage next begins (0 when
        currently covered).  Steps after the final contact get the wait to
        the first contact assuming the timeline repeats (orbital motion is
        periodic at the week scale, so wrap-around is the right model);
        if there is no contact at all, every entry is ``inf``.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {mask.shape}")
    total = mask.size
    if total == 0:
        raise ValueError("mask must be non-empty")
    if not mask.any():
        return np.full(total, np.inf)
    # Distance to next True, computed by scanning the doubled array backwards.
    doubled = np.concatenate([mask, mask])
    wait = np.empty(2 * total, dtype=np.float64)
    next_contact = np.inf
    for index in range(2 * total - 1, -1, -1):
        if doubled[index]:
            next_contact = 0.0
        wait[index] = next_contact
        next_contact += 1.0
    return wait[:total] * step_s


@dataclass(frozen=True)
class DelayTolerantApp:
    """An application with a latency tolerance (IoT uplink, bulk transfer)."""

    name: str
    max_wait_s: float

    def __post_init__(self) -> None:
        if self.max_wait_s <= 0.0:
            raise ValueError(f"max wait must be positive, got {self.max_wait_s}")


#: Representative delay-tolerant applications.
IOT_TELEMETRY = DelayTolerantApp("iot-telemetry", max_wait_s=2 * 3600.0)
BULK_TRANSFER = DelayTolerantApp("bulk-transfer", max_wait_s=12 * 3600.0)
MESSAGING = DelayTolerantApp("messaging", max_wait_s=15 * 60.0)


@dataclass(frozen=True)
class ServiceFeasibility:
    """Whether a sparse constellation can serve an app at a site."""

    app: DelayTolerantApp
    site_name: str
    mean_wait_s: float
    p95_wait_s: float
    max_wait_s: float
    feasible: bool


class DelayTolerantService:
    """Evaluates delay-tolerant feasibility over per-site coverage masks."""

    def __init__(self, grid: TimeGrid) -> None:
        self.grid = grid

    def evaluate(
        self,
        app: DelayTolerantApp,
        site_name: str,
        mask: np.ndarray,
    ) -> ServiceFeasibility:
        """Feasible when the 95th-percentile wait is within the app's budget."""
        waits = contact_wait_times_s(mask, self.grid.step_s)
        finite = waits[np.isfinite(waits)]
        if finite.size == 0:
            return ServiceFeasibility(
                app=app,
                site_name=site_name,
                mean_wait_s=float("inf"),
                p95_wait_s=float("inf"),
                max_wait_s=float("inf"),
                feasible=False,
            )
        p95 = float(np.percentile(finite, 95))
        return ServiceFeasibility(
            app=app,
            site_name=site_name,
            mean_wait_s=float(finite.mean()),
            p95_wait_s=p95,
            max_wait_s=float(finite.max()),
            feasible=p95 <= app.max_wait_s,
        )


def early_adopter_issuance(
    epoch: int, initial_issuance: float = 1000.0, halving_epochs: int = 52
) -> float:
    """Declining per-epoch token issuance rewarding early participation.

    Halves every ``halving_epochs`` epochs (the Helium/Bitcoin pattern the
    paper's token discussion points at).

    Raises:
        ValueError: On negative epoch or non-positive parameters.
    """
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    if initial_issuance <= 0.0:
        raise ValueError("initial issuance must be positive")
    if halving_epochs <= 0:
        raise ValueError("halving period must be positive")
    return initial_issuance / (2.0 ** (epoch // halving_epochs))
