"""The multi-party constellation registry.

The registry is MP-LEO's book of record: which party contributed which
satellites, with what stake.  It enforces the paper's structural rules:

* Contributions are attributed — every satellite has exactly one owner.
* Withdrawal removes exactly the withdrawing party's satellites; nobody can
  remove another party's contribution (no single party can shut the network
  down).
* Stake is derived from contributions, never set directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.constellation.satellite import Constellation, Satellite, UNASSIGNED_PARTY
from repro.core.party import Party, contribution_ratio_split, stake_shares
from repro.obs import timeline as obs_timeline


class RegistryError(RuntimeError):
    """Raised on invalid registry operations (unknown party, id collisions)."""


class MultiPartyConstellation:
    """A shared constellation built from attributed party contributions.

    Example:
        >>> registry = MultiPartyConstellation()
        >>> registry.join(Party("taiwan"))
        >>> registry.contribute("taiwan", satellites)
        >>> registry.stakes()
        {'taiwan': 1.0}
    """

    def __init__(self) -> None:
        self._parties: Dict[str, Party] = {}
        self._satellites: Dict[str, Satellite] = {}

    # -- membership ------------------------------------------------------

    def join(self, party: Party) -> None:
        """Register a new participant.

        Raises:
            RegistryError: If the name is already taken.
        """
        if party.name in self._parties:
            raise RegistryError(f"party {party.name!r} already joined")
        self._parties[party.name] = party
        obs_timeline.emit(
            obs_timeline.PARTY_JOIN,
            0.0,
            party.name,
            party=party.name,
            objective=party.objective.value,
        )

    def leave(self, party_name: str) -> Constellation:
        """Withdraw a party and all its satellites.

        Returns:
            The withdrawn satellites (the party keeps physical control of
            its own hardware — the core of the decentralization argument).

        Raises:
            RegistryError: If the party is unknown.
        """
        if party_name not in self._parties:
            raise RegistryError(f"unknown party {party_name!r}")
        withdrawn = [
            satellite
            for satellite in self._satellites.values()
            if satellite.party == party_name
        ]
        for satellite in withdrawn:
            del self._satellites[satellite.sat_id]
        del self._parties[party_name]
        obs_timeline.emit(
            obs_timeline.PARTY_WITHDRAW,
            0.0,
            party_name,
            party=party_name,
            satellites=len(withdrawn),
        )
        return Constellation(withdrawn, name=f"withdrawn-{party_name}")

    @property
    def party_names(self) -> List[str]:
        return sorted(self._parties)

    def party(self, name: str) -> Party:
        if name not in self._parties:
            raise RegistryError(f"unknown party {name!r}")
        return self._parties[name]

    # -- contributions ---------------------------------------------------

    def contribute(
        self, party_name: str, satellites: Iterable[Satellite]
    ) -> None:
        """Add a party's satellites to the shared constellation.

        Satellites are re-attributed to the contributing party regardless of
        their incoming ``party`` field.

        Raises:
            RegistryError: On unknown party or satellite-id collision.
        """
        if party_name not in self._parties:
            raise RegistryError(f"unknown party {party_name!r}")
        incoming = [satellite.owned_by(party_name) for satellite in satellites]
        for satellite in incoming:
            if satellite.sat_id in self._satellites:
                raise RegistryError(
                    f"satellite id {satellite.sat_id!r} already contributed"
                )
        for satellite in incoming:
            self._satellites[satellite.sat_id] = satellite

    def decommission(self, party_name: str, sat_ids: Iterable[str]) -> None:
        """Remove specific satellites — only the owner may do so.

        Raises:
            RegistryError: If a satellite is unknown or owned by another party.
        """
        ids = list(sat_ids)
        for sat_id in ids:
            satellite = self._satellites.get(sat_id)
            if satellite is None:
                raise RegistryError(f"unknown satellite {sat_id!r}")
            if satellite.party != party_name:
                raise RegistryError(
                    f"{party_name!r} cannot decommission {sat_id!r} "
                    f"owned by {satellite.party!r}"
                )
        for sat_id in ids:
            del self._satellites[sat_id]

    # -- views -----------------------------------------------------------

    def constellation(self) -> Constellation:
        """The full shared constellation (stable id order)."""
        return Constellation(
            [self._satellites[sat_id] for sat_id in sorted(self._satellites)],
            name="mp-leo",
        )

    def contributions(self) -> Dict[str, int]:
        """Per-party satellite counts (zero for satellite-less members)."""
        counts = {name: 0 for name in self._parties}
        for satellite in self._satellites.values():
            counts[satellite.party] += 1
        return counts

    def stakes(self) -> Dict[str, float]:
        """Stake shares by party (contributed fraction of the constellation)."""
        return stake_shares(
            {name: count for name, count in self.contributions().items() if count}
        )

    def largest_party(self) -> str:
        """Party with the most satellites (ties break lexicographically)."""
        counts = self.contributions()
        if not counts or all(count == 0 for count in counts.values()):
            raise RegistryError("no contributions yet")
        return min(counts, key=lambda name: (-counts[name], name))

    def __len__(self) -> int:
        return len(self._satellites)


def registry_with_ratio_split(
    pool: Constellation,
    ratios: Sequence[float],
    rng: np.random.Generator,
    party_prefix: str = "party",
) -> MultiPartyConstellation:
    """Build a registry by splitting a satellite pool among parties by ratio.

    The Fig. 6 construction: a 1000-satellite constellation whose satellites
    are randomly attributed to 11 parties in a given contribution ratio.

    Args:
        pool: Satellites to distribute (all of them are used).
        ratios: Per-party contribution ratios, e.g. ``[10] + [1] * 10``.
        rng: Seeded generator for the random attribution.
        party_prefix: Party names are ``f"{prefix}-{index}"``.
    """
    counts = contribution_ratio_split(len(pool), ratios)
    registry = MultiPartyConstellation()
    permutation = rng.permutation(len(pool))
    cursor = 0
    for index, count in enumerate(counts):
        name = f"{party_prefix}-{index}"
        registry.join(Party(name))
        member_indices = permutation[cursor : cursor + count]
        cursor += count
        registry.contribute(
            name, [pool[int(position)] for position in member_indices]
        )
    return registry
