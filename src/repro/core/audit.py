"""Service-denial auditing (§4's trust question, made executable).

"How do we prevent individual satellite operators from denying service to
others while continuing to benefit from other satellites?"

The auditor compares what each party's satellites *could* have served
(visibility is physics and publicly verifiable through proof-of-coverage
pings) against what they *did* serve (the session log).  A party whose
satellites are systematically idle while other parties' terminals sit in
their footprints is denying service — and the measurement gives governance
an objective slashing trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.capacity import spare_capacity_split
from repro.sim.events import SessionEvent


@dataclass(frozen=True)
class PartyAuditReport:
    """Audit verdict for one party."""

    party: str
    opportunity_fraction: float  # Time its sats saw other parties' demand.
    service_fraction: float  # Time its sats actually served other parties.
    denial_score: float  # 1 - served/opportunity (0 = fully cooperative).
    suspicious: bool


def _served_fraction_by_party(
    sessions: Sequence[SessionEvent],
    satellite_parties: Sequence[str],
    sat_ids: Sequence[str],
    horizon_s: float,
) -> Dict[str, float]:
    """Mean fraction of the horizon each party's satellites served guests."""
    served_s: Dict[str, float] = {party: 0.0 for party in set(satellite_parties)}
    for session in sessions:
        if session.is_spare_capacity:
            served_s[session.sat_party] = (
                served_s.get(session.sat_party, 0.0) + session.duration_s
            )
    counts: Dict[str, int] = {}
    for party in satellite_parties:
        counts[party] = counts.get(party, 0) + 1
    return {
        party: served_s.get(party, 0.0) / (counts[party] * horizon_s)
        for party in counts
    }


def audit_service_denial(
    visibility: np.ndarray,
    terminal_parties: Sequence[str],
    satellite_parties: Sequence[str],
    sessions: Sequence[SessionEvent],
    sat_ids: Sequence[str],
    horizon_s: float,
    denial_threshold: float = 0.5,
    min_opportunity_fraction: float = 0.002,
) -> List[PartyAuditReport]:
    """Audit every satellite-owning party for systematic service denial.

    Args:
        visibility: Boolean (terminals, satellites, T) ground truth.
        terminal_parties: Owner of each terminal.
        satellite_parties: Owner of each satellite.
        sessions: The engine's session log for the same horizon.
        sat_ids: Satellite ids aligned with the visibility tensor.
        horizon_s: Length of the audited horizon, seconds.
        denial_threshold: Denial score above which a party is flagged.
        min_opportunity_fraction: Parties whose satellites barely saw any
            foreign demand are not judged (insufficient evidence).  LEO
            geometry makes opportunity fractions inherently small — one
            satellite sees any given terminal well under 1% of the time —
            so the default is 0.2% of the horizon (~3 min/day), enough
            passes to be statistically meaningful.

    Returns:
        One report per satellite-owning party, sorted by denial score
        (worst first).

    Opportunity is measured by :func:`repro.sim.capacity.spare_capacity_split`:
    the fraction of time a party's satellites had *only* other parties'
    terminals in their footprints.  That is exactly the time the MP-LEO
    contract expects them to serve guests, so
    ``denial = 1 - served / opportunity``.
    """
    if horizon_s <= 0.0:
        raise ValueError("horizon must be positive")
    if not 0.0 < denial_threshold <= 1.0:
        raise ValueError("denial threshold must be in (0, 1]")

    ledger = spare_capacity_split(visibility, terminal_parties, satellite_parties)
    parties = np.array(satellite_parties)
    served = _served_fraction_by_party(
        sessions, satellite_parties, sat_ids, horizon_s
    )

    reports: List[PartyAuditReport] = []
    for party in sorted(set(satellite_parties)):
        member = parties == party
        opportunity = float(ledger.spare_fraction[member].mean())
        service = served.get(party, 0.0)
        if opportunity < min_opportunity_fraction:
            denial = 0.0
            suspicious = False
        else:
            denial = max(0.0, 1.0 - service / opportunity)
            suspicious = denial > denial_threshold
        reports.append(
            PartyAuditReport(
                party=party,
                opportunity_fraction=opportunity,
                service_fraction=service,
                denial_score=denial,
                suspicious=suspicious,
            )
        )
    reports.sort(key=lambda report: -report.denial_score)
    return reports


def slashing_amounts(
    reports: Sequence[PartyAuditReport],
    stake_by_party: Dict[str, float],
    slash_rate: float = 0.1,
) -> Dict[str, float]:
    """Token amounts to slash from flagged parties.

    Slashing is proportional to both the party's stake and its denial score
    — the paper's proportionality principle applied punitively.

    Raises:
        ValueError: On a slash rate outside (0, 1].
    """
    if not 0.0 < slash_rate <= 1.0:
        raise ValueError("slash rate must be in (0, 1]")
    return {
        report.party: slash_rate
        * report.denial_score
        * stake_by_party.get(report.party, 0.0)
        for report in reports
        if report.suspicious
    }
