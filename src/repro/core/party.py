"""MP-LEO participants.

A :class:`Party` is any entity that contributes satellites to a shared
constellation — a country securing coverage, an ISP entering the market, or
a non-profit.  Its *stake* is its share of the constellation, which the
paper argues should bound both its influence and the damage its departure
can cause ("Any degradation should be proportional to their stake in the
network").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class PartyObjective(enum.Enum):
    """What a participant optimizes for (§3.2).

    The paper notes participants "can either choose to optimize for their
    profit (e.g., private companies) or optimize for connectivity in their
    own region (e.g., countries)" and finds the two are correlated but not
    identical.
    """

    GLOBAL_PROFIT = "global_profit"
    REGIONAL_COVERAGE = "regional_coverage"


@dataclass(frozen=True)
class Party:
    """One MP-LEO participant.

    Attributes:
        name: Unique participant name.
        objective: Placement objective (profit vs regional coverage).
        home_region: City name anchoring a regional-coverage objective
            (ignored for global-profit parties).
        launch_budget: How many satellites the party can contribute.
    """

    name: str
    objective: PartyObjective = PartyObjective.GLOBAL_PROFIT
    home_region: str = ""
    launch_budget: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("party name must be non-empty")
        if self.launch_budget < 0:
            raise ValueError(
                f"launch budget must be non-negative, got {self.launch_budget}"
            )


def stake_shares(contributions: Dict[str, int]) -> Dict[str, float]:
    """Normalize per-party satellite counts into stake shares summing to 1.

    Raises:
        ValueError: If counts are negative or all zero.
    """
    if any(count < 0 for count in contributions.values()):
        raise ValueError("contributions must be non-negative")
    total = sum(contributions.values())
    if total == 0:
        raise ValueError("at least one party must contribute satellites")
    return {party: count / total for party, count in contributions.items()}


def contribution_ratio_split(
    total_satellites: int, ratios: Sequence[float]
) -> List[int]:
    """Split a satellite count among parties in given ratios (Fig. 6 setup).

    The paper's Fig. 6 varies 11 parties' contribution ratios from 1:1:...:1
    to 10:1:...:1 over a 1000-satellite constellation.  Largest-remainder
    apportionment keeps the counts integral and summing exactly to the total.

    Raises:
        ValueError: On empty/negative ratios or non-positive total.
    """
    if total_satellites <= 0:
        raise ValueError(f"total must be positive, got {total_satellites}")
    if not ratios:
        raise ValueError("ratios must be non-empty")
    if any(ratio <= 0 for ratio in ratios):
        raise ValueError("ratios must be positive")
    weight = sum(ratios)
    quotas = [total_satellites * ratio / weight for ratio in ratios]
    counts = [int(quota) for quota in quotas]
    remainders = [quota - count for quota, count in zip(quotas, counts)]
    shortfall = total_satellites - sum(counts)
    # Hand the leftover satellites to the largest remainders (stable order).
    order = sorted(range(len(ratios)), key=lambda i: (-remainders[i], i))
    for i in order[:shortfall]:
        counts[i] += 1
    return counts
