"""Proof-of-coverage incentives (§3.2).

Helium-style mechanics adapted to orbits: "Ground stations at random
locations can verify coverage by pinging satellites when they are overhead,
and provide proof-of-coverage to earn rewards."

The flow per epoch:

1. Verifier sites ping satellites that pass overhead; each successful ping
   is a :class:`CoverageProof` (a satellite can only be proven when it was
   actually visible — the simulator's visibility masks are ground truth, so
   false proofs are rejected).
2. :class:`ProofOfCoverageEpoch` validates proofs and splits the epoch's
   reward pool between satellite owners (for providing coverage) and
   verifiers (for auditing it).

Rewards can be weighted toward low-coverage regions — the Helium trick the
paper discusses — via per-verifier weight multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.satellite import Constellation
from repro.core.ledger import TokenLedger
from repro.ground.sites import GroundSite
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine


@dataclass(frozen=True)
class CoverageProof:
    """One verified ping: a verifier site saw a satellite at a time step."""

    verifier_name: str
    sat_id: str
    time_index: int


class InvalidProofError(ValueError):
    """Raised when a submitted proof contradicts the visibility ground truth."""


@dataclass
class ProofOfCoverageEpoch:
    """Collects and validates proofs for one reward epoch.

    Attributes:
        constellation: Satellites eligible for rewards.
        verifiers: Verifier ground sites.
        grid: The epoch's time grid.
        provider_share: Fraction of the pool paid to satellite owners; the
            remainder pays verifiers.
        verifier_weights: Optional per-verifier multipliers (e.g. boost
            under-covered regions).
    """

    constellation: Constellation
    verifiers: Sequence[GroundSite]
    grid: TimeGrid
    provider_share: float = 0.8
    verifier_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.provider_share <= 1.0:
            raise ValueError(
                f"provider share must be in [0, 1], got {self.provider_share}"
            )
        engine = VisibilityEngine(self.grid)
        self._visibility = engine.visibility(self.constellation, self.verifiers)
        self._verifier_index = {
            site.name: index for index, site in enumerate(self.verifiers)
        }
        self._sat_index = {
            satellite.sat_id: index for index, satellite in enumerate(self.constellation)
        }
        self._proofs: List[CoverageProof] = []

    def generate_proofs(
        self, rng: np.random.Generator, pings_per_verifier: int = 100
    ) -> List[CoverageProof]:
        """Simulate verifiers pinging at random times; hits become proofs."""
        proofs: List[CoverageProof] = []
        for site_name, site_idx in self._verifier_index.items():
            times = rng.integers(0, self.grid.count, size=pings_per_verifier)
            for time_index in times:
                visible = np.flatnonzero(self._visibility[site_idx, :, time_index])
                if visible.size == 0:
                    continue
                sat_idx = int(visible[rng.integers(0, visible.size)])
                proofs.append(
                    CoverageProof(
                        verifier_name=site_name,
                        sat_id=self.constellation[sat_idx].sat_id,
                        time_index=int(time_index),
                    )
                )
        for proof in proofs:
            self.submit(proof)
        return proofs

    def submit(self, proof: CoverageProof) -> None:
        """Validate and record a proof.

        Raises:
            InvalidProofError: If the named satellite was not actually
                visible from the verifier at the claimed time (a fabricated
                proof).
            KeyError: On unknown verifier or satellite.
        """
        site_idx = self._verifier_index[proof.verifier_name]
        sat_idx = self._sat_index[proof.sat_id]
        if not 0 <= proof.time_index < self.grid.count:
            raise InvalidProofError(f"time index {proof.time_index} out of range")
        if not self._visibility[site_idx, sat_idx, proof.time_index]:
            raise InvalidProofError(
                f"{proof.sat_id} was not visible from {proof.verifier_name} "
                f"at step {proof.time_index}"
            )
        self._proofs.append(proof)

    @property
    def proofs(self) -> List[CoverageProof]:
        return list(self._proofs)

    def distribute(
        self, ledger: TokenLedger, reward_pool: float, memo: str = "poc-epoch"
    ) -> Dict[str, float]:
        """Mint the epoch's rewards into the ledger.

        Providers split ``provider_share`` of the pool in proportion to the
        (weighted) proofs their satellites earned; verifiers split the rest
        in proportion to the proofs they produced.

        Returns:
            Map account -> minted amount (empty when there were no proofs).
        """
        if reward_pool <= 0.0:
            raise ValueError(f"reward pool must be positive, got {reward_pool}")
        if not self._proofs:
            return {}
        weights = self.verifier_weights or {}

        provider_points: Dict[str, float] = {}
        verifier_points: Dict[str, float] = {}
        for proof in self._proofs:
            weight = weights.get(proof.verifier_name, 1.0)
            owner = self.constellation.get(proof.sat_id).party
            provider_points[owner] = provider_points.get(owner, 0.0) + weight
            verifier_points[proof.verifier_name] = (
                verifier_points.get(proof.verifier_name, 0.0) + weight
            )

        minted: Dict[str, float] = {}
        provider_pool = reward_pool * self.provider_share
        verifier_pool = reward_pool - provider_pool
        provider_total = sum(provider_points.values())
        for owner, points in sorted(provider_points.items()):
            amount = provider_pool * points / provider_total
            ledger.mint(owner, amount, memo=f"{memo}:coverage")
            minted[owner] = minted.get(owner, 0.0) + amount
        verifier_total = sum(verifier_points.values())
        if verifier_pool > 0.0:
            for verifier, points in sorted(verifier_points.items()):
                amount = verifier_pool * points / verifier_total
                ledger.mint(verifier, amount, memo=f"{memo}:verification")
                minted[verifier] = minted.get(verifier, 0.0) + amount
        return minted
