"""Party objectives: regional coverage vs global profit (§3.2).

"Participants in MP-LEO constellations can either choose to optimize for
their profit (e.g., private companies) or optimize for connectivity in
their own region (e.g., countries).  In our simulations, we find that these
choices are often co-related, but do not exactly lead to the same outcomes.
Even when a participant optimizes for local gains over global outcomes, the
spare capacity is spread across the globe and benefits the rest of the
network."

This module makes the two objectives concrete placement scorers so the
correlation the paper observes can be measured:

* :func:`regional_scorer` — maximize coverage of one home city.
* :func:`global_scorer` — maximize population-weighted global coverage
  (the profit proxy: more weighted coverage = more billable utilization).
* :func:`objective_correlation` — score a candidate pool under both and
  report how aligned the rankings are (Spearman rank correlation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.satellite import Constellation, Satellite
from repro.core.placement import PlacementCandidate, PlacementScorer
from repro.ground.cities import CITIES, City, city_by_name
from repro.sim.clock import TimeGrid


def regional_scorer(
    base: Optional[Constellation],
    grid: TimeGrid,
    home_city: City,
) -> PlacementScorer:
    """A scorer whose objective is coverage of one home city only."""
    return PlacementScorer(base, grid, cities=[home_city])


def global_scorer(
    base: Optional[Constellation],
    grid: TimeGrid,
    cities: Sequence[City] = CITIES,
) -> PlacementScorer:
    """A scorer whose objective is population-weighted global coverage."""
    return PlacementScorer(base, grid, cities=cities)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank)."""
    order = np.argsort(values)
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(values.size, dtype=np.float64)
    # Average ties.
    for value in np.unique(values):
        member = values == value
        if member.sum() > 1:
            ranks[member] = ranks[member].mean()
    return ranks


def spearman_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two score vectors.

    Raises:
        ValueError: On mismatched or too-short inputs.
    """
    x = np.asarray(list(a), dtype=np.float64)
    y = np.asarray(list(b), dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("score vectors must have the same length")
    if x.size < 3:
        raise ValueError("need at least 3 candidates")
    rank_x = _ranks(x)
    rank_y = _ranks(y)
    sx = rank_x.std()
    sy = rank_y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((rank_x - rank_x.mean()) * (rank_y - rank_y.mean())).mean() / (sx * sy))


@dataclass(frozen=True)
class ObjectiveComparison:
    """How regional and global objectives rank the same candidates."""

    candidates: Tuple[Satellite, ...]
    regional_gains: Tuple[float, ...]
    global_gains: Tuple[float, ...]
    rank_correlation: float
    regional_best: Satellite
    global_best: Satellite

    @property
    def same_winner(self) -> bool:
        return self.regional_best.sat_id == self.global_best.sat_id


def objective_correlation(
    base: Optional[Constellation],
    candidates: Sequence[Satellite],
    grid: TimeGrid,
    home_city_name: str,
    cities: Sequence[City] = CITIES,
) -> ObjectiveComparison:
    """Score candidates under both objectives and compare the rankings.

    Args:
        base: Existing constellation the candidate would join.
        candidates: Candidate satellites.
        grid: Evaluation horizon.
        home_city_name: The regional party's home city.
        cities: Global city set for the profit objective.
    """
    if len(candidates) < 3:
        raise ValueError("need at least 3 candidates to compare rankings")
    home = city_by_name(home_city_name)
    regional = regional_scorer(base, grid, home).score(candidates)
    global_ = global_scorer(base, grid, cities).score(candidates)
    regional_gains = tuple(c.coverage_gain_fraction for c in regional)
    global_gains = tuple(c.coverage_gain_fraction for c in global_)

    def best(scored: List[PlacementCandidate]) -> Satellite:
        return max(
            scored,
            key=lambda c: (c.coverage_gain_fraction, c.satellite.sat_id),
        ).satellite

    return ObjectiveComparison(
        candidates=tuple(candidates),
        regional_gains=regional_gains,
        global_gains=global_gains,
        rank_correlation=spearman_correlation(regional_gains, global_gains),
        regional_best=best(regional),
        global_best=best(global_),
    )
