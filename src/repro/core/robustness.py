"""Withdrawal and robustness analysis (§3.4).

Quantifies how much coverage an MP-LEO constellation loses when participants
deny service or back out:

* Fig. 5: withdraw a random half of an L-satellite constellation.
* Fig. 6: withdraw the *largest* of 11 parties under varying contribution
  skew.

Two API layers: constellation-level convenience functions (self-contained),
and mask-level functions over a precomputed
:class:`~repro.sim.visibility.PackedVisibility` for Monte-Carlo loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.constellation.satellite import Constellation
from repro.core.registry import MultiPartyConstellation
from repro.ground.cities import CITIES, City, population_weights, terminals_for_cities
from repro.sim.clock import TimeGrid
from repro.sim.coverage import population_weighted_coverage_fraction
from repro.sim.visibility import PackedVisibility, VisibilityEngine


@dataclass(frozen=True)
class WithdrawalImpact:
    """Coverage before and after a withdrawal."""

    base_fraction: float
    reduced_fraction: float
    horizon_s: float

    @property
    def reduction_fraction(self) -> float:
        """Coverage lost, as a fraction of the horizon (the Fig. 5/6 y-axis)."""
        return self.base_fraction - self.reduced_fraction

    @property
    def reduction_percent(self) -> float:
        return 100.0 * self.reduction_fraction

    @property
    def lost_time_s(self) -> float:
        """Coverage lost expressed as absolute time (the paper quotes
        '1 day and 16 hours' for L=200)."""
        return self.reduction_fraction * self.horizon_s


def impact_from_packed(
    visibility: PackedVisibility,
    weights: Sequence[float],
    base_indices: np.ndarray,
    kept_indices: np.ndarray,
) -> WithdrawalImpact:
    """Withdrawal impact from a precomputed packed visibility pool.

    Args:
        visibility: Packed pool visibility (sites must match ``weights``).
        weights: Per-site population weights.
        base_indices: Pool indices of the full constellation.
        kept_indices: Pool indices remaining after withdrawal.
    """
    weight_array = np.asarray(list(weights), dtype=np.float64)
    weight_array = weight_array / weight_array.sum()
    base = float(weight_array @ visibility.coverage_fractions(base_indices))
    kept = float(weight_array @ visibility.coverage_fractions(kept_indices))
    return WithdrawalImpact(
        base_fraction=base,
        reduced_fraction=kept,
        horizon_s=visibility.grid.duration_s,
    )


def coverage_fraction_of(
    constellation: Constellation,
    grid: TimeGrid,
    cities: Sequence[City] = CITIES,
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
) -> float:
    """Population-weighted coverage fraction of a constellation (convenience)."""
    engine = VisibilityEngine(grid)
    terminals = terminals_for_cities(cities, min_elevation_deg=min_elevation_deg)
    masks = engine.site_coverage(constellation, terminals)
    return population_weighted_coverage_fraction(masks, population_weights(cities))


def random_withdrawal_impact(
    constellation: Constellation,
    fraction: float,
    grid: TimeGrid,
    rng: np.random.Generator,
    cities: Sequence[City] = CITIES,
) -> WithdrawalImpact:
    """Fig. 5 primitive: withdraw a random ``fraction`` of the satellites."""
    from repro.constellation.sampling import split_randomly

    kept, _ = split_randomly(constellation, fraction, rng)
    base = coverage_fraction_of(constellation, grid, cities)
    reduced = (
        coverage_fraction_of(kept, grid, cities) if len(kept) else 0.0
    )
    return WithdrawalImpact(base, reduced, grid.duration_s)


def largest_party_withdrawal(
    registry: MultiPartyConstellation,
    grid: TimeGrid,
    cities: Sequence[City] = CITIES,
) -> WithdrawalImpact:
    """Fig. 6 primitive: the largest contributor denies service."""
    full = registry.constellation()
    largest = registry.largest_party()
    remaining = full.without_party(largest)
    base = coverage_fraction_of(full, grid, cities)
    reduced = (
        coverage_fraction_of(remaining, grid, cities) if len(remaining) else 0.0
    )
    return WithdrawalImpact(base, reduced, grid.duration_s)


def proportionality_gap(
    impact: WithdrawalImpact, stake: float
) -> float:
    """How far a withdrawal's damage exceeds the withdrawing party's stake.

    The paper's robustness goal: "Any degradation should be proportional to
    their stake in the network."  Positive values mean super-proportional
    damage (bad); zero or negative means the network absorbed the exit.
    Measured on *relative* coverage loss: (base - reduced) / base vs stake.
    """
    if not 0.0 < stake <= 1.0:
        raise ValueError(f"stake must be in (0, 1], got {stake}")
    if impact.base_fraction <= 0.0:
        return 0.0
    relative_loss = impact.reduction_fraction / impact.base_fraction
    return relative_loss - stake
