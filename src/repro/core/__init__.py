"""MP-LEO: the paper's contribution — decentralized multi-party constellations.

* :mod:`repro.core.party` — participants and their stakes.
* :mod:`repro.core.registry` — the multi-party constellation registry:
  contributions, withdrawal, stake accounting.
* :mod:`repro.core.placement` — coverage-gap-driven satellite placement (the
  incentive-aligned strategy of §3.3) plus baselines.
* :mod:`repro.core.incentives` — proof-of-coverage rewards (§3.2).
* :mod:`repro.core.market` — data-market pricing and billing.
* :mod:`repro.core.ledger` — the token ledger mediating settlements.
* :mod:`repro.core.sharing` — spare-capacity exchange accounting and the
  "coverage worth" metric behind the paper's 50-vs-1000 claim.
* :mod:`repro.core.robustness` — withdrawal/robustness analysis (§3.4).
* :mod:`repro.core.governance` — multi-party control votes (§4).
* :mod:`repro.core.bootstrap` — delay-tolerant early-deployment analysis (§4).
* :mod:`repro.core.availability` — availability planning (the "five-nines"
  sizing question of §2).
* :mod:`repro.core.failures` — satellite failure/attrition models (§3.4).
* :mod:`repro.core.objectives` — regional vs profit placement objectives
  (§3.2) and their rank correlation.
* :mod:`repro.core.audit` — service-denial detection and slashing (§4).
* :mod:`repro.core.auction` — uniform-price double-auction clearing for the
  spot capacity market (§4's market-design question).
* :mod:`repro.core.economics` — constellation cost models and the
  go-it-alone vs MP-LEO comparison (§1-§2).
"""

from repro.core.party import Party
from repro.core.registry import MultiPartyConstellation
from repro.core.placement import (
    PlacementCandidate,
    best_candidate,
    gap_filling_candidates,
    score_candidates,
)
from repro.core.robustness import (
    WithdrawalImpact,
    largest_party_withdrawal,
    random_withdrawal_impact,
)

__all__ = [
    "Party",
    "MultiPartyConstellation",
    "PlacementCandidate",
    "gap_filling_candidates",
    "score_candidates",
    "best_candidate",
    "WithdrawalImpact",
    "random_withdrawal_impact",
    "largest_party_withdrawal",
]
