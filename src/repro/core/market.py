"""The MP-LEO data market (§3.2, §4).

"Consumers pay satellite operators to carry traffic, in proportion to
utilization.  These prices can be dynamically set, leading to open data
markets, or they can be predetermined."

Pieces:

* Pricing policies — :class:`FlatPricing` (predetermined) and
  :class:`CongestionPricing` (dynamic: price rises with satellite load,
  a simple open-market stand-in).
* :class:`DataMarket` — bills the session events the simulator produces and
  settles them on a :class:`~repro.core.ledger.TokenLedger`.  Intra-party
  sessions (a party's terminals on its own satellites) are free; only
  spare-capacity trades settle, matching the paper's model where the same
  participant "can both be a consumer ... and a provider".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.ledger import LedgerError, TokenLedger
from repro.obs import get_logger, metrics
from repro.obs import timeline as obs_timeline
from repro.sim.events import SessionEvent

_LOG = get_logger(__name__)

_INVOICES = metrics.counter("core.market.invoices")
_BILLED_TOKENS = metrics.counter("core.market.billed_tokens")
_SETTLEMENTS = metrics.counter("core.market.settlements")
_SETTLED_TOKENS = metrics.counter("core.market.settled_tokens")


class PricingPolicy(Protocol):
    """Maps a session to a price in tokens."""

    def price(self, session: SessionEvent, utilization: float) -> float:
        """Price one session given the provider satellite's mean utilization."""
        ...


@dataclass(frozen=True)
class FlatPricing:
    """Predetermined price per megabit."""

    tokens_per_megabit: float = 0.001

    def __post_init__(self) -> None:
        if self.tokens_per_megabit < 0.0:
            raise ValueError("price must be non-negative")

    def price(self, session: SessionEvent, utilization: float) -> float:
        return session.volume_megabits * self.tokens_per_megabit


@dataclass(frozen=True)
class CongestionPricing:
    """Dynamic price rising with provider utilization.

    price/Mb = base * (1 + slope * utilization); a crude open-market proxy:
    heavily used satellites command higher prices, idle ones discount to
    attract traffic (the equilibrium question the paper leaves open).
    """

    base_tokens_per_megabit: float = 0.001
    slope: float = 4.0

    def __post_init__(self) -> None:
        if self.base_tokens_per_megabit < 0.0:
            raise ValueError("base price must be non-negative")
        if self.slope < 0.0:
            raise ValueError("slope must be non-negative")

    def price(self, session: SessionEvent, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return session.volume_megabits * self.base_tokens_per_megabit * (
            1.0 + self.slope * utilization
        )


@dataclass(frozen=True)
class Invoice:
    """One priced spare-capacity session."""

    session: SessionEvent
    tokens: float

    @property
    def consumer(self) -> str:
        return self.session.terminal_party

    @property
    def provider(self) -> str:
        return self.session.sat_party


@dataclass
class DataMarket:
    """Bills sessions and settles spare-capacity trades on a ledger."""

    pricing: PricingPolicy = field(default_factory=FlatPricing)

    def bill(
        self,
        sessions: Sequence[SessionEvent],
        utilization_by_sat: Optional[Dict[str, float]] = None,
    ) -> List[Invoice]:
        """Price every cross-party session.

        Args:
            sessions: Engine session events.
            utilization_by_sat: Mean utilization per satellite id, for
                dynamic pricing (defaults to 0 for all).
        """
        utilization_by_sat = utilization_by_sat or {}
        invoices = []
        for session in sessions:
            if not session.is_spare_capacity:
                continue  # Own-satellite traffic is not traded.
            utilization = utilization_by_sat.get(session.sat_id, 0.0)
            tokens = self.pricing.price(session, utilization)
            if tokens > 0.0:
                invoices.append(Invoice(session=session, tokens=tokens))
        _INVOICES.inc(len(invoices))
        _BILLED_TOKENS.inc(sum(invoice.tokens for invoice in invoices))
        _LOG.debug(
            "billed %d spare-capacity sessions out of %d total",
            len(invoices), len(sessions),
        )
        return invoices

    def settle(
        self, invoices: Sequence[Invoice], ledger: TokenLedger
    ) -> Dict[Tuple[str, str], float]:
        """Net and transfer invoice amounts between parties on the ledger.

        Amounts are netted pairwise first (A owes B 10, B owes A 4 -> one
        6-token transfer), reducing ledger churn and matching how clearing
        houses settle.

        Returns:
            Map (debtor, creditor) -> transferred amount.

        Raises:
            LedgerError: If a debtor lacks balance (callers should bootstrap
                accounts or mint against collateral first).
        """
        net: Dict[Tuple[str, str], float] = {}
        for invoice in invoices:
            pair = (invoice.consumer, invoice.provider)
            net[pair] = net.get(pair, 0.0) + invoice.tokens

        transfers: Dict[Tuple[str, str], float] = {}
        seen = set()
        for (debtor, creditor), amount in sorted(net.items()):
            if (debtor, creditor) in seen:
                continue
            reverse = net.get((creditor, debtor), 0.0)
            seen.add((debtor, creditor))
            seen.add((creditor, debtor))
            balance = amount - reverse
            if balance > 0.0:
                ledger.transfer(debtor, creditor, balance, memo="market settlement")
                transfers[(debtor, creditor)] = balance
            elif balance < 0.0:
                ledger.transfer(creditor, debtor, -balance, memo="market settlement")
                transfers[(creditor, debtor)] = -balance
        # Settlement is a run-level act with no simulation timestamp of its
        # own; events land at t=0 and carry the counterparty + amount.
        for (payer, payee), amount in sorted(transfers.items()):
            obs_timeline.emit(
                obs_timeline.MARKET_SETTLEMENT,
                0.0,
                payer,
                party=payer,
                payee=payee,
                tokens=amount,
            )
        _SETTLEMENTS.inc(len(transfers))
        _SETTLED_TOKENS.inc(sum(transfers.values()))
        _LOG.debug(
            "settled %d invoices into %d netted transfers",
            len(invoices), len(transfers),
        )
        return transfers

    def revenue_by_party(self, invoices: Sequence[Invoice]) -> Dict[str, float]:
        """Gross provider revenue per party (before netting)."""
        revenue: Dict[str, float] = {}
        for invoice in invoices:
            revenue[invoice.provider] = revenue.get(invoice.provider, 0.0) + invoice.tokens
        return revenue

    def spend_by_party(self, invoices: Sequence[Invoice]) -> Dict[str, float]:
        """Gross consumer spend per party (before netting)."""
        spend: Dict[str, float] = {}
        for invoice in invoices:
            spend[invoice.consumer] = spend.get(invoice.consumer, 0.0) + invoice.tokens
        return spend
