"""Satellite failures (§3.4: "How do we deal with satellite failures?").

Models a constellation's attrition over time: each satellite fails
independently after an exponentially distributed lifetime (the standard
reliability model for electronics-dominated failures), and the constellation
owner replenishes on a launch cadence.  Coverage impact reuses the same
machinery as the withdrawal analysis — a failure is just an involuntary,
party-agnostic withdrawal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.satellite import Constellation


@dataclass(frozen=True)
class FailureModel:
    """Independent exponential lifetimes with optional infant mortality.

    Attributes:
        mean_lifetime_years: Mean time to failure of a healthy satellite.
        infant_mortality_prob: Probability a satellite fails immediately
            after deployment (launch/commissioning losses; Starlink's early
            shells saw ~2-3%).
    """

    mean_lifetime_years: float = 5.0
    infant_mortality_prob: float = 0.02

    def __post_init__(self) -> None:
        if self.mean_lifetime_years <= 0.0:
            raise ValueError("mean lifetime must be positive")
        if not 0.0 <= self.infant_mortality_prob < 1.0:
            raise ValueError("infant mortality must be in [0, 1)")

    def sample_lifetimes_years(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw failure times (years since deployment) for ``count`` satellites."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        lifetimes = rng.exponential(self.mean_lifetime_years, size=count)
        dead_on_arrival = rng.random(count) < self.infant_mortality_prob
        lifetimes[dead_on_arrival] = 0.0
        return lifetimes

    def surviving_fraction(self, age_years: float) -> float:
        """Expected fraction of a cohort still alive at a given age."""
        if age_years < 0.0:
            raise ValueError("age must be non-negative")
        return (1.0 - self.infant_mortality_prob) * float(
            np.exp(-age_years / self.mean_lifetime_years)
        )


@dataclass(frozen=True)
class AttritionPoint:
    """Constellation state at one epoch of an attrition simulation."""

    years: float
    alive: int
    alive_indices: np.ndarray


def simulate_attrition(
    constellation: Constellation,
    model: FailureModel,
    rng: np.random.Generator,
    horizon_years: float = 5.0,
    epochs: int = 11,
    replenish_per_year: int = 0,
) -> List[AttritionPoint]:
    """Simulate constellation attrition (and optional replenishment).

    Replenished satellites are modelled as restoring the earliest-failed
    indices (a replacement flies into the vacated slot), which keeps the
    orbital geometry comparable across epochs.

    Args:
        constellation: Starting constellation.
        model: Failure model.
        rng: Seeded generator.
        horizon_years: Simulation horizon.
        epochs: Number of evaluation instants (including year 0).
        replenish_per_year: Replacement launch rate.

    Returns:
        One :class:`AttritionPoint` per epoch.
    """
    if epochs < 2:
        raise ValueError(f"need at least 2 epochs, got {epochs}")
    if horizon_years <= 0.0:
        raise ValueError("horizon must be positive")
    if replenish_per_year < 0:
        raise ValueError("replenish rate must be non-negative")

    count = len(constellation)
    lifetimes = model.sample_lifetimes_years(count, rng)
    order = np.argsort(lifetimes)  # Earliest failures first.
    sorted_lifetimes = lifetimes[order]

    points: List[AttritionPoint] = []
    for epoch in range(epochs):
        years = horizon_years * epoch / (epochs - 1)
        alive_mask = lifetimes > years
        # Replenishment restores the earliest failures, budget permitting.
        # The dead (lifetime <= years) occupy exactly the first ``n_dead``
        # slots of ``order``, so the restored set is a prefix — no
        # per-satellite scan needed.
        budget = int(replenish_per_year * years)
        if budget > 0:
            n_dead = int(
                np.searchsorted(sorted_lifetimes, years, side="right")
            )
            alive_mask[order[: min(budget, n_dead)]] = True
        alive_indices = np.flatnonzero(alive_mask)
        points.append(
            AttritionPoint(
                years=years,
                alive=int(alive_indices.size),
                alive_indices=alive_indices,
            )
        )
    return points


def replenishment_rate_for_steady_state(
    constellation_size: int, model: FailureModel
) -> float:
    """Launches per year needed to hold a constellation at size.

    In steady state the failure rate of an N-satellite fleet with mean
    lifetime T is N / T per year.
    """
    if constellation_size <= 0:
        raise ValueError("size must be positive")
    return constellation_size / model.mean_lifetime_years
