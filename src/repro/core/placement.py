"""Coverage-gap-driven satellite placement (§3.3).

The paper's key observation: *individually rational placement is globally
robust*.  A new participant maximizes its own revenue by placing satellites
where coverage gaps are largest — far (in orbital parameters) from existing
satellites — and that same choice maximizes global coverage and interleaves
ownership, so no single party's withdrawal opens a large continuous hole.

This module scores candidate satellites by their *marginal population-
weighted coverage gain* over a base constellation, generates candidate sets
(phase sweeps, inclination/altitude variants, or arbitrary pools), and
provides placement strategies:

* :func:`greedy_gap_filling_design` — the incentive-aligned strategy.
* :func:`random_design` / :func:`clustered_design` — baselines for the
  ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG
from repro.constellation.satellite import Constellation, Satellite
from repro.ground.cities import CITIES, City, population_weights, terminals_for_cities
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine


@dataclass(frozen=True)
class PlacementCandidate:
    """A scored candidate satellite."""

    satellite: Satellite
    coverage_gain_fraction: float  # Weighted coverage fraction gained.
    coverage_gain_s: float  # The same gain as covered seconds over the horizon.

    @property
    def coverage_gain_hours(self) -> float:
        return self.coverage_gain_s / 3600.0


class PlacementScorer:
    """Scores candidates against a base constellation's city coverage.

    Precomputes the base coverage masks once; each candidate costs a single
    1-satellite propagation plus boolean math.
    """

    def __init__(
        self,
        base: Optional[Constellation],
        grid: TimeGrid,
        cities: Sequence[City] = CITIES,
        min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
        context=None,
    ) -> None:
        self.grid = grid
        self.cities = list(cities)
        self.weights = np.array(population_weights(self.cities))
        self._terminals = terminals_for_cities(
            self.cities, min_elevation_deg=min_elevation_deg
        )
        self._engine = VisibilityEngine(grid)
        # ``context`` (an ExperimentContext, duck-typed to avoid the import
        # cycle) supplies the cached per-(sites, grid) geometry — the ECI
        # unit track and thresholds are then shared across every Monte-Carlo
        # run instead of rebuilt per scorer.
        self._geometry = (
            context.site_geometry(self._terminals, grid)
            if context is not None
            else None
        )
        if base is not None and len(base) > 0:
            self.base_masks = self._engine.site_coverage(
                base, self._terminals, geometry=self._geometry
            )
        else:
            self.base_masks = np.zeros(
                (len(self.cities), grid.count), dtype=bool
            )
        self.base_fraction = float(
            self.weights @ self.base_masks.mean(axis=1)
        )

    def score(self, candidates: Sequence[Satellite]) -> List[PlacementCandidate]:
        """Score each candidate's marginal weighted coverage gain.

        Candidates are scored independently (each against the same base),
        matching the paper's Fig. 4 methodology of adding one satellite.
        """
        if not candidates:
            return []
        constellation = Constellation(candidates, name="candidates")
        vis = self._engine.visibility(
            constellation, self._terminals, geometry=self._geometry
        )  # (S, C, T)
        union = self.base_masks[:, None, :] | vis
        fractions = self.weights @ union.mean(axis=2)  # (C,)
        gains = fractions - self.base_fraction
        return [
            PlacementCandidate(
                satellite=candidate,
                coverage_gain_fraction=float(gain),
                coverage_gain_s=float(gain) * self.grid.duration_s,
            )
            for candidate, gain in zip(candidates, gains)
        ]

    def absorb(self, satellite: Satellite) -> None:
        """Fold a chosen satellite into the base (for greedy designs)."""
        vis = self._engine.visibility(
            Constellation([satellite]), self._terminals, geometry=self._geometry
        )  # (S, 1, T)
        self.base_masks = self.base_masks | vis[:, 0, :]
        self.base_fraction = float(self.weights @ self.base_masks.mean(axis=1))


def score_candidates(
    base: Optional[Constellation],
    candidates: Sequence[Satellite],
    grid: TimeGrid,
    cities: Sequence[City] = CITIES,
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG,
) -> List[PlacementCandidate]:
    """One-shot candidate scoring (see :class:`PlacementScorer`)."""
    scorer = PlacementScorer(base, grid, cities, min_elevation_deg)
    return scorer.score(candidates)


def best_candidate(
    scored: Sequence[PlacementCandidate],
) -> PlacementCandidate:
    """Highest-gain candidate (ties break on satellite id for determinism).

    Raises:
        ValueError: On an empty candidate list.
    """
    if not scored:
        raise ValueError("no candidates to choose from")
    return max(
        scored,
        key=lambda candidate: (
            candidate.coverage_gain_fraction,
            candidate.satellite.sat_id,
        ),
    )


def gap_filling_candidates(
    rng: np.random.Generator,
    count: int = 64,
    altitude_km_range: tuple = (540.0, 600.0),
    inclination_deg_choices: Sequence[float] = (43.0, 53.0, 70.0, 97.6),
    party: str = "",
    prefix: str = "CAND",
) -> List[Satellite]:
    """Generate a diverse candidate pool spanning the design space.

    Candidates draw uniformly over RAAN and phase, uniformly over the given
    altitude range, and uniformly over the inclination choices — the three
    axes Fig. 4c studies.
    """
    from repro.orbits.elements import OrbitalElements

    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    candidates = []
    for index in range(count):
        elements = OrbitalElements.from_degrees(
            altitude_km=float(rng.uniform(*altitude_km_range)),
            inclination_deg=float(rng.choice(list(inclination_deg_choices))),
            raan_deg=float(rng.uniform(0.0, 360.0)),
            mean_anomaly_deg=float(rng.uniform(0.0, 360.0)),
        )
        candidates.append(
            Satellite(
                sat_id=f"{prefix}-{index:04d}",
                elements=elements,
                party=party or "unassigned",
            )
        )
    return candidates


def greedy_gap_filling_design(
    satellite_count: int,
    grid: TimeGrid,
    rng: np.random.Generator,
    base: Optional[Constellation] = None,
    candidates_per_round: int = 32,
    cities: Sequence[City] = CITIES,
    party: str = "",
    context=None,
) -> Constellation:
    """The incentive-aligned strategy: repeatedly fill the largest gap.

    Each round draws a fresh random candidate pool, scores it against the
    current design, and commits the best candidate — a greedy approximation
    of the paper's "identify the largest coverage gaps and fill them".
    """
    if satellite_count <= 0:
        raise ValueError(f"satellite_count must be positive, got {satellite_count}")
    scorer = PlacementScorer(base, grid, cities, context=context)
    chosen: List[Satellite] = []
    for round_index in range(satellite_count):
        pool = gap_filling_candidates(
            rng,
            count=candidates_per_round,
            party=party,
            prefix=f"GF{round_index:03d}",
        )
        winner = best_candidate(scorer.score(pool)).satellite
        scorer.absorb(winner)
        chosen.append(winner)
    return Constellation(chosen, name="gap-filling-design")


def random_design(
    satellite_count: int,
    pool: Constellation,
    rng: np.random.Generator,
) -> Constellation:
    """Baseline: sample satellites uniformly from a pool (no strategy)."""
    from repro.constellation.sampling import sample_constellation

    return sample_constellation(pool, satellite_count, rng, name="random-design")


def clustered_design(
    satellite_count: int,
    rng: np.random.Generator,
    inclination_deg: float = 53.0,
    altitude_km: float = 550.0,
    phase_spread_deg: float = 10.0,
) -> Constellation:
    """Baseline: satellites bunched in one plane within a narrow phase window.

    The anti-pattern the paper warns about — clustered deployments leave the
    rest of the orbit empty, so coverage barely improves with count and a
    withdrawal leaves a contiguous hole.
    """
    from repro.orbits.elements import OrbitalElements

    if satellite_count <= 0:
        raise ValueError(f"satellite_count must be positive, got {satellite_count}")
    satellites = [
        Satellite(
            sat_id=f"CLUSTER-{index:04d}",
            elements=OrbitalElements.from_degrees(
                altitude_km=altitude_km,
                inclination_deg=inclination_deg,
                raan_deg=0.0,
                mean_anomaly_deg=float(rng.uniform(0.0, phase_spread_deg)),
            ),
        )
        for index in range(satellite_count)
    ]
    return Constellation(satellites, name="clustered-design")
