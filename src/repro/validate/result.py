"""Validation check results and the schema'd validation report.

Every oracle cross-check, fuzz invariant, and golden comparison produces a
:class:`CheckResult`; a full ``python -m repro validate`` run aggregates
them into a :class:`ValidationReport` whose :meth:`~ValidationReport.
to_dict` form is embedded in the observability run report (``--report``)
under ``extra.validation``.

Schema stability mirrors :mod:`repro.obs.report`: ``schema`` is bumped on
breaking layout changes and tests pin the current key set.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Bumped when the validation-report layout changes incompatibly.
VALIDATION_SCHEMA_VERSION = 1

#: The allowed check statuses.
STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_ERROR = "error"

#: Top-level keys every validation report carries.
VALIDATION_KEYS = frozenset(
    {"schema", "mode", "seed", "checks", "counts", "ok", "goldens_updated"}
)


@dataclass
class CheckResult:
    """Outcome of one validation check.

    Attributes:
        name: Dotted check identifier, e.g. ``oracle.propagator`` or
            ``fuzz.radius_bounds`` or ``golden.fig2``.
        status: ``"pass"``, ``"fail"``, or ``"error"`` (the check itself
            raised rather than returning a verdict).
        details: JSON-able measurement payload — thresholds, observed
            errors, failing seeds — enough to reproduce a failure.
        elapsed_s: Wall-clock cost of the check.
    """

    name: str
    status: str
    details: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_PASS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "details": self.details,
            "elapsed_s": self.elapsed_s,
        }


def passed(name: str, **details: Any) -> CheckResult:
    """A passing :class:`CheckResult` (elapsed filled in by the runner)."""
    return CheckResult(name=name, status=STATUS_PASS, details=details)


def failed(name: str, **details: Any) -> CheckResult:
    """A failing :class:`CheckResult`."""
    return CheckResult(name=name, status=STATUS_FAIL, details=details)


@contextmanager
def timed_check(result_holder: List[CheckResult]) -> Iterator[None]:
    """Time the enclosed check and stamp ``elapsed_s`` on its result.

    The check body appends exactly one :class:`CheckResult` to
    ``result_holder``; the context manager stamps the elapsed wall-clock
    on it when the block exits.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        if result_holder:
            result_holder[-1].elapsed_s = time.perf_counter() - start


@dataclass
class ValidationReport:
    """Aggregate of every check run by one ``repro validate`` invocation."""

    mode: str
    seed: int
    checks: List[CheckResult] = field(default_factory=list)
    goldens_updated: bool = False

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {STATUS_PASS: 0, STATUS_FAIL: 0, STATUS_ERROR: 0}
        for check in self.checks:
            counts[check.status] = counts.get(check.status, 0) + 1
        return counts

    def failures(self) -> List[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": VALIDATION_SCHEMA_VERSION,
            "mode": self.mode,
            "seed": self.seed,
            "checks": [check.to_dict() for check in self.checks],
            "counts": self.counts,
            "ok": self.ok,
            "goldens_updated": self.goldens_updated,
        }


def validate_validation_report(report: Dict[str, Any]) -> None:
    """Raise ValueError unless ``report`` has the current report layout."""
    missing = VALIDATION_KEYS - set(report)
    if missing:
        raise ValueError(f"validation report missing keys: {sorted(missing)}")
    if report["schema"] != VALIDATION_SCHEMA_VERSION:
        raise ValueError(
            f"validation report schema {report['schema']!r} "
            f"!= {VALIDATION_SCHEMA_VERSION}"
        )
    if not isinstance(report["checks"], list):
        raise ValueError("'checks' must be a list")
    for check in report["checks"]:
        for key in ("name", "status", "details", "elapsed_s"):
            if key not in check:
                raise ValueError(f"check entry missing {key!r}: {check}")
        if check["status"] not in (STATUS_PASS, STATUS_FAIL, STATUS_ERROR):
            raise ValueError(f"unknown check status {check['status']!r}")
