"""Validation orchestration: profiles, execution, and report rendering.

``python -m repro validate`` lands here.  Two profiles:

* **quick** — the CI-blocking gate: the 24 h propagator oracle at a coarse
  step, moderate visibility/packed oracles, a handful of fuzz trials per
  invariant, and every golden snapshot.  Target: tens of seconds.
* **full** — the pre-merge gate for performance PRs: the same oracles at
  finer steps and larger populations, and an order of magnitude more fuzz
  trials.  Target: under a minute.

Every check runs inside a ``validate.<check>`` span so ``--report`` (the
observability run report, schema'd via :mod:`repro.obs.report`) records
where validation time goes alongside the verdicts themselves (under
``extra.validation``, schema'd via :mod:`repro.validate.result`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import Table
from repro.obs import get_logger
from repro.obs.trace import span
from repro.validate import fuzz, goldens, oracles
from repro.validate.result import (
    STATUS_ERROR,
    CheckResult,
    ValidationReport,
)

_LOG = get_logger(__name__)

#: Default seed for the oracle and fuzz streams (the goldens carry their
#: own fixed seed inside :data:`repro.validate.goldens.GOLDEN_CONFIG`).
DEFAULT_SEED = 2024


@dataclass(frozen=True)
class ValidationProfile:
    """Sizing knobs of one validation tier."""

    name: str
    fuzz_trials: int
    propagator_satellites: int
    propagator_step_s: float
    visibility_satellites: int
    visibility_sites: int
    visibility_duration_s: float
    visibility_step_s: float
    packed_satellites: int
    packed_sites: int
    packed_subsets: int
    fused_satellites: int
    fused_sites: int
    fused_chunk_sizes: tuple
    intervals_satellites: int
    intervals_sites: int
    intervals_duration_s: float
    intervals_step_s: float
    backend_satellites: int = 24
    backend_sites: int = 5
    backend_subsets: int = 8


QUICK = ValidationProfile(
    name="quick",
    fuzz_trials=4,
    propagator_satellites=12,
    propagator_step_s=1_800.0,
    visibility_satellites=16,
    visibility_sites=5,
    visibility_duration_s=14_400.0,
    visibility_step_s=60.0,
    packed_satellites=32,
    packed_sites=6,
    packed_subsets=6,
    fused_satellites=24,
    fused_sites=4,
    fused_chunk_sizes=(1, 13, 1_000_000),
    intervals_satellites=12,
    intervals_sites=4,
    intervals_duration_s=14_400.0,
    intervals_step_s=120.0,
    backend_satellites=24,
    backend_sites=5,
    backend_subsets=8,
)

FULL = ValidationProfile(
    name="full",
    fuzz_trials=50,
    propagator_satellites=64,
    propagator_step_s=300.0,
    visibility_satellites=64,
    visibility_sites=12,
    visibility_duration_s=86_400.0,
    visibility_step_s=30.0,
    packed_satellites=128,
    packed_sites=12,
    packed_subsets=24,
    fused_satellites=96,
    fused_sites=8,
    fused_chunk_sizes=(1, 13, 64, 1_000_000),
    intervals_satellites=32,
    intervals_sites=8,
    intervals_duration_s=86_400.0,
    intervals_step_s=120.0,
    backend_satellites=64,
    backend_sites=10,
    backend_subsets=24,
)

PROFILES = {profile.name: profile for profile in (QUICK, FULL)}


def _run_check(name: str, thunk) -> CheckResult:
    """Execute one check under a span, converting crashes to error results."""
    start = time.perf_counter()
    with span(f"validate.{name}"):
        try:
            result = thunk()
        except Exception as error:  # A crashed check is a failed check.
            _LOG.exception("validation check %s crashed", name)
            result = CheckResult(
                name=name,
                status=STATUS_ERROR,
                details={"exception": f"{type(error).__name__}: {error}"},
            )
    result.elapsed_s = time.perf_counter() - start
    _LOG.info("%s: %s (%.2f s)", result.name, result.status, result.elapsed_s)
    return result


def run_validation(
    mode: str = "quick",
    seed: int = DEFAULT_SEED,
    update_goldens: bool = False,
) -> ValidationReport:
    """Run the oracle suite, the fuzz harness, and the golden gate.

    Args:
        mode: ``"quick"`` or ``"full"`` (see :data:`PROFILES`).
        seed: Root seed of the oracle/fuzz randomization streams.
        update_goldens: Rewrite the committed snapshots from this run
            instead of comparing against them.

    Raises:
        ValueError: On an unknown mode.
    """
    if mode not in PROFILES:
        raise ValueError(f"unknown validation mode {mode!r} (quick/full)")
    profile = PROFILES[mode]
    report = ValidationReport(mode=mode, seed=seed, goldens_updated=update_goldens)

    report.checks.append(
        _run_check(
            "oracle.propagator",
            lambda: oracles.check_propagator_agreement(
                seed,
                n_satellites=profile.propagator_satellites,
                step_s=profile.propagator_step_s,
            ),
        )
    )
    report.checks.append(
        _run_check(
            "oracle.visibility",
            lambda: oracles.check_visibility_oracle(
                seed,
                n_satellites=profile.visibility_satellites,
                n_sites=profile.visibility_sites,
                duration_s=profile.visibility_duration_s,
                step_s=profile.visibility_step_s,
            ),
        )
    )
    report.checks.append(
        _run_check(
            "oracle.packed",
            lambda: oracles.check_packed_agreement(
                seed,
                n_satellites=profile.packed_satellites,
                n_sites=profile.packed_sites,
                n_subsets=profile.packed_subsets,
            ),
        )
    )
    report.checks.append(
        _run_check(
            "oracle.fused",
            lambda: oracles.check_fused_agreement(
                seed,
                n_satellites=profile.fused_satellites,
                n_sites=profile.fused_sites,
                chunk_sizes=profile.fused_chunk_sizes,
            ),
        )
    )
    report.checks.append(
        _run_check(
            "oracle.intervals",
            lambda: oracles.check_interval_agreement(
                seed,
                n_satellites=profile.intervals_satellites,
                n_sites=profile.intervals_sites,
                duration_s=profile.intervals_duration_s,
                step_s=profile.intervals_step_s,
            ),
        )
    )
    report.checks.append(
        _run_check(
            "oracle.backends",
            lambda: oracles.check_backend_agreement(
                seed,
                n_satellites=profile.backend_satellites,
                n_sites=profile.backend_sites,
                n_subsets=profile.backend_subsets,
            ),
        )
    )

    for name in fuzz.INVARIANTS:
        report.checks.append(
            _run_check(
                f"fuzz.{name}",
                lambda name=name: fuzz.run_invariant(seed, name, profile.fuzz_trials),
            )
        )

    for name in goldens.GOLDEN_EXPERIMENTS:
        report.checks.append(
            _run_check(
                f"golden.{name}",
                lambda name=name: goldens.check_golden(name, update=update_goldens),
            )
        )
    return report


def _summarize_details(check: CheckResult) -> str:
    """One short human-readable cell per check for the summary table.

    Tolerates sparse details (a check may legitimately return fewer
    measurements than the full payload, e.g. when it bails out early).
    """
    details = check.details
    if check.status == STATUS_ERROR:
        return str(details.get("exception", "crashed"))
    if check.name == "oracle.propagator" and "max_error_m" in details:
        return (
            f"max error {details['max_error_m']:.2e} m "
            f"(< {details.get('threshold_m', '?')} m)"
        )
    if check.name == "oracle.visibility" and "disagreeing_samples" in details:
        return (
            f"{details['disagreeing_samples']} edge ties, "
            f"{details.get('interior_disagreements', '?')} interior, "
            f"max run {details.get('max_disagreement_run_steps', '?')} step(s)"
        )
    if check.name == "oracle.packed" and "selections" in details:
        return (
            f"{details['selections']} selections, "
            f"{len(details.get('mismatches', []))} mismatches"
        )
    if check.name == "oracle.fused" and "culled_pairs" in details:
        return (
            f"{len(details.get('chunk_sizes', []))} chunk sizes, "
            f"{details['culled_pairs']} pairs / "
            f"{details.get('culled_satellites', '?')} sats culled, "
            f"{len(details.get('mismatches', []))} mismatches"
        )
    if check.name == "oracle.backends" and "comparisons" in details:
        names = ",".join(details.get("available", []))
        return (
            f"{names}: {details['comparisons']} comparisons, "
            f"{len(details.get('mismatches', []))} mismatches"
        )
    if check.name == "oracle.intervals" and "contacts" in details:
        return (
            f"{details['contacts']} contacts, "
            f"{details.get('scheduling_comparisons', 0)} schedules, "
            f"{len(details.get('mismatches', []))} mismatches"
        )
    if check.name.startswith("fuzz.") and "trials" in details:
        return (
            f"{details['trials']} trials, "
            f"{len(details.get('failures', []))} failures"
        )
    if check.name.startswith("golden."):
        if details.get("updated"):
            return "snapshot rewritten"
        if "mismatches" in details:
            return (
                f"{details.get('fields_compared', '?')} fields, "
                f"{len(details['mismatches'])} drifted"
            )
        return str(details.get("error", ""))
    return ""


def render_validation_report(report: ValidationReport) -> None:
    """Print the human-facing summary table (stdout, like the figure tables)."""
    table = Table(
        f"repro validate --{report.mode} (seed {report.seed})",
        ["check", "status", "seconds", "summary"],
        precision=2,
    )
    for check in report.checks:
        table.add_row(
            check.name, check.status.upper(), check.elapsed_s,
            _summarize_details(check),
        )
    table.print()
    counts = report.counts
    print(
        f"{counts['pass']} passed, {counts['fail']} failed, "
        f"{counts['error']} errored -> {'OK' if report.ok else 'FAILED'}"
    )
    for check in report.failures():
        for line in _failure_lines(check):
            print(f"  {check.name}: {line}")


def _failure_lines(check: CheckResult) -> List[str]:
    details = check.details
    if "mismatches" in details and details["mismatches"]:
        return [str(m) for m in details["mismatches"][:20]]
    if "config_mismatches" in details:
        return [str(m) for m in details["config_mismatches"][:20]]
    if "failures" in details and details["failures"]:
        return [
            f"trial {f['trial']}: {f['message']}" for f in details["failures"][:10]
        ]
    if "exception" in details:
        return [str(details["exception"])]
    if "error" in details:
        return [str(details["error"])]
    return [str(details)]
