"""Differential oracle cross-checks: fast paths vs slow-but-exact references.

Three cross-checks, each pitting an optimized implementation the figures
depend on against an independent formulation of the same physics:

* :func:`check_propagator_agreement` — the vectorized
  :class:`~repro.orbits.propagator.BatchPropagator` (including its
  circular fast path) against the scalar
  :class:`~repro.orbits.propagator.J2Propagator`, position-by-position
  over randomized element sets.
* :func:`check_visibility_oracle` — the spherical-geometry cos-threshold
  shortcut of :class:`~repro.sim.visibility.VisibilityEngine` against the
  exact topocentric elevation of :func:`repro.orbits.topocentric.
  elevation_deg`, with a quantified edge-disagreement budget: the two
  formulations are algebraically equivalent, so any disagreement must sit
  on a contact edge (a floating-point tie at the threshold crossing) and
  span at most ``edge_budget_steps`` samples.
* :func:`check_packed_agreement` — every reduction of
  :class:`~repro.sim.visibility.PackedVisibility` (site masks, coverage
  fractions, satellite activity, with and without satellite/site subset
  restrictions) against plain boolean reductions of the unpacked tensor.
  Bit packing is lossless, so agreement is exact, not approximate.
* :func:`check_fused_agreement` — the streaming kernels of
  :mod:`repro.sim.kernels` (chunked slabs, geometric pair culling, cached
  site tracks) against reductions of the materialized unculled tensor,
  bit-exact across chunk sizes; the population is rigged so the cull
  genuinely fires.
* :func:`check_interval_agreement` — the analytic contact-interval engine
  of :mod:`repro.sim.intervals` against the dense grid engine: resampling
  the refined (rise, set) windows at the grid instants must reproduce the
  grid masks bit for bit (the coarse scan *is* the grid kernel, and
  refinement is clamped to the bracketing step), while continuous-measure
  reductions (coverage fractions, gap lengths) must agree within the
  quantified budget of one time step per refined contact edge.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ground.sites import GroundSite
from repro.obs import get_logger
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import eci_to_ecef, gmst_rad
from repro.orbits.propagator import BatchPropagator, J2Propagator
from repro.orbits.topocentric import elevation_deg
from repro.sim import kernels
from repro.sim.clock import TimeGrid
from repro.sim.visibility import (
    VisibilityEngine,
    packed_visibility,
)
from repro.validate import gen
from repro.validate.result import CheckResult, failed, passed

_LOG = get_logger(__name__)


def check_propagator_agreement(
    seed: int,
    n_satellites: int = 16,
    duration_s: float = 86_400.0,
    step_s: float = 1_800.0,
    max_eccentricity: float = gen.MAX_DOMAIN_ECCENTRICITY,
    max_error_m: float = 1.0,
) -> CheckResult:
    """Scalar-vs-batch propagator state agreement on random element sets.

    Propagates the same randomized elements through both implementations
    over ``duration_s`` (default: the 24 h acceptance horizon) and fails if
    any position differs by ``max_error_m`` or more.  Two batches run: an
    all-circular one (pinning the batch fast path, which skips the Kepler
    solve entirely) and a mixed circular/eccentric one (pinning the general
    path against the scalar reference).
    """
    times = TimeGrid(duration_s=duration_s, step_s=step_s).times_s
    worst_error_m = 0.0
    worst_batch = None
    for batch_name, eccentricity_ceiling in (
        ("circular", 0.0),
        ("mixed", max_eccentricity),
    ):
        rng = gen.trial_rng(seed, 1, 0 if eccentricity_ceiling == 0.0 else 1)
        elements = gen.random_elements(rng, n_satellites, eccentricity_ceiling)
        batch_positions = BatchPropagator(elements).positions_eci(times)
        scalar_positions = np.empty_like(batch_positions)
        for sat, element in enumerate(elements):
            propagator = J2Propagator(element)
            for t, time_s in enumerate(times):
                scalar_positions[sat, t] = propagator.position_eci(time_s)
        error_m = float(
            np.linalg.norm(batch_positions - scalar_positions, axis=-1).max()
        )
        if error_m > worst_error_m:
            worst_error_m, worst_batch = error_m, batch_name
    details = {
        "satellites": n_satellites,
        "times": int(times.size),
        "duration_s": duration_s,
        "max_error_m": worst_error_m,
        "threshold_m": max_error_m,
        "worst_batch": worst_batch,
    }
    if worst_error_m < max_error_m:
        return passed("oracle.propagator", **details)
    return failed("oracle.propagator", **details)


def _max_run_length(mask: np.ndarray) -> int:
    """Longest run of consecutive True along the last axis, over all rows."""
    if not mask.any():
        return 0
    run = np.zeros(mask.shape[:-1], dtype=np.int64)
    longest = 0
    for t in range(mask.shape[-1]):
        run = np.where(mask[..., t], run + 1, 0)
        longest = max(longest, int(run.max()))
    return longest


def _edge_adjacent(*masks: np.ndarray) -> np.ndarray:
    """Samples adjacent to a transition in any of the given boolean masks.

    A sample t is edge-adjacent when some mask changes value between t-1
    and t or between t and t+1; the first and last grid samples are always
    edge-adjacent (a contact truncated by the horizon has its edge outside
    the grid).
    """
    shape = masks[0].shape
    near = np.zeros(shape, dtype=bool)
    for mask in masks:
        transitions = mask[..., :-1] != mask[..., 1:]
        near[..., :-1] |= transitions
        near[..., 1:] |= transitions
    near[..., 0] = True
    near[..., -1] = True
    return near


def check_visibility_oracle(
    seed: int,
    n_satellites: int = 24,
    n_sites: int = 6,
    duration_s: float = 21_600.0,
    step_s: float = 60.0,
    edge_budget_steps: int = 1,
    sites: Optional[Sequence] = None,
    elements: Optional[Sequence] = None,
) -> CheckResult:
    """Exact topocentric elevation vs the cos-threshold visibility shortcut.

    Both formulations are exact on the same spherical geometry (the
    threshold identity ``el >= mask  <=>  dot(unit_site, unit_sat) >=
    cos(psi)`` is an algebraic rewrite, and for the circular orbits used
    here the shortcut's semi-major-axis radius equals the true radius), so
    they may only disagree where floating-point rounding breaks a tie at
    the threshold — i.e. exactly at a contact edge.  The check therefore
    asserts two things about the disagreement set:

    * every disagreeing sample is adjacent to a visibility transition in
      one of the two masks (no interior disagreement ever), and
    * no edge contributes more than ``edge_budget_steps`` consecutive
      disagreeing samples (the budget is in units of the time step: a
      tie can shift a contact boundary by at most one sampling instant
      per step of budget).
    """
    rng = gen.trial_rng(seed, 2)
    if elements is None:
        elements = gen.random_elements(rng, n_satellites, max_eccentricity=0.0)
    if sites is None:
        sites = gen.random_sites(rng, n_sites)
    grid = TimeGrid(duration_s=duration_s, step_s=step_s)
    propagator = BatchPropagator(list(elements))

    shortcut = VisibilityEngine(grid).visibility(propagator, list(sites))

    theta = gmst_rad(grid.times_s, grid.gmst_at_epoch_rad)
    sat_ecef = eci_to_ecef(propagator.positions_eci(grid.times_s), theta)
    exact = np.empty_like(shortcut)
    for s, site in enumerate(sites):
        elevations = elevation_deg(site.position_ecef, sat_ecef)  # (N, T)
        exact[s] = elevations >= site.min_elevation_deg

    disagree = shortcut ^ exact
    interior = disagree & ~_edge_adjacent(exact, shortcut)
    longest_run = _max_run_length(disagree)
    details = {
        "sites": len(sites),
        "satellites": propagator.count,
        "samples": int(grid.count),
        "step_s": step_s,
        "disagreeing_samples": int(disagree.sum()),
        "interior_disagreements": int(interior.sum()),
        "max_disagreement_run_steps": longest_run,
        "edge_budget_steps": edge_budget_steps,
    }
    if interior.any() or longest_run > edge_budget_steps:
        return failed("oracle.visibility", **details)
    return passed("oracle.visibility", **details)


def _unpacked_reductions_match(
    packed, visible: np.ndarray, sat_indices, site_indices
) -> List[str]:
    """Compare every PackedVisibility reduction against boolean reductions.

    Returns a list of mismatch descriptions (empty = exact agreement).
    ``visible`` is the unpacked (S, N, T) boolean tensor the packed form
    was built from.
    """
    mismatches: List[str] = []
    # The packed methods get the selections verbatim (including plain empty
    # lists) to exercise their own index normalization; the numpy reference
    # indexing below needs an integer dtype for empty selections.
    sat_ref = None if sat_indices is None else np.asarray(sat_indices, dtype=np.intp)
    site_ref = (
        None if site_indices is None else np.asarray(site_indices, dtype=np.intp)
    )
    subset = visible if sat_ref is None else visible[:, sat_ref, :]
    restricted = subset if site_ref is None else subset[site_ref]

    # Per-site union masks and coverage fractions under the satellite subset.
    expect_site_masks = subset.any(axis=1)
    if not np.array_equal(packed.site_masks(sat_indices), expect_site_masks):
        mismatches.append("site_masks")
    for site in range(visible.shape[0]):
        if not np.array_equal(
            packed.site_mask(site, sat_indices), expect_site_masks[site]
        ):
            mismatches.append(f"site_mask[{site}]")
    if not np.array_equal(
        packed.coverage_fractions(sat_indices),
        expect_site_masks.mean(axis=1) if expect_site_masks.size
        else np.zeros(visible.shape[0]),
    ):
        mismatches.append("coverage_fractions")

    # Per-satellite activity under both subset axes.
    n_subset = restricted.shape[1]
    if restricted.shape[0] == 0 or n_subset == 0:
        expect_sat_masks = np.zeros((n_subset, visible.shape[2]), dtype=bool)
    else:
        expect_sat_masks = restricted.any(axis=0)
    if not np.array_equal(
        packed.satellite_masks(sat_indices, site_indices), expect_sat_masks
    ):
        mismatches.append("satellite_masks")
    if not np.array_equal(
        packed.satellite_active_fractions(sat_indices, site_indices),
        expect_sat_masks.mean(axis=1) if expect_sat_masks.size
        else np.zeros(n_subset),
    ):
        mismatches.append("satellite_active_fractions")
    return mismatches


def check_packed_agreement(
    seed: int,
    n_satellites: int = 40,
    n_sites: int = 7,
    duration_s: float = 10_800.0,
    step_s: float = 60.0,
    n_subsets: int = 8,
) -> CheckResult:
    """Packed vs unpacked boolean reductions, exact equality.

    Builds one boolean visibility tensor and its bit-packed twin, then
    replays every reduction the experiments use — full pool, random
    satellite subsets, random site restrictions, empty and singleton
    selections — demanding bit-exact agreement.  Deliberately includes a
    non-multiple-of-8 sample count so the byte-padding path is always
    exercised.
    """
    rng = gen.trial_rng(seed, 3)
    elements = gen.random_elements(rng, n_satellites, max_eccentricity=0.0)
    sites = gen.random_sites(rng, n_sites)
    count = int(duration_s // step_s)
    if count % 8 == 0:
        count += 3  # Force padding bits into every packed row.
    grid = TimeGrid(duration_s=count * step_s, step_s=step_s)

    engine = VisibilityEngine(grid)
    visible = engine.visibility(elements, sites)  # (S, N, T) bool
    packed = packed_visibility(elements, sites, grid)

    selections = [(None, None), (None, []), ([], None), ([], [])]
    for _ in range(n_subsets):
        sat_size = int(rng.integers(1, n_satellites + 1))
        site_size = int(rng.integers(1, n_sites + 1))
        sat_subset = rng.choice(n_satellites, size=sat_size, replace=False)
        site_subset = rng.choice(n_sites, size=site_size, replace=False)
        selections.append((sat_subset, None))
        selections.append((sat_subset, site_subset))
        selections.append((None, site_subset))

    mismatched: List[str] = []
    for sat_indices, site_indices in selections:
        for name in _unpacked_reductions_match(
            packed, visible, sat_indices, site_indices
        ):
            sat_count = "all" if sat_indices is None else len(sat_indices)
            site_count = "all" if site_indices is None else len(site_indices)
            mismatched.append(f"{name} (sats={sat_count}, sites={site_count})")

    details = {
        "sites": n_sites,
        "satellites": n_satellites,
        "samples": int(grid.count),
        "selections": len(selections),
        "mismatches": mismatched,
    }
    if mismatched:
        return failed("oracle.packed", **details)
    return passed("oracle.packed", **details)


def check_fused_agreement(
    seed: int,
    n_satellites: int = 28,
    n_sites: int = 5,
    duration_s: float = 10_800.0,
    step_s: float = 60.0,
    chunk_sizes: Sequence[int] = (1, 13, 64, 1_000_000),
) -> CheckResult:
    """Streaming (culled) kernels vs the materialized unculled reference.

    Builds a random circular population *plus* a guaranteed-cullable block —
    a ~79 deg-latitude site that a handful of injected low-inclination
    satellites can never reach — and demands bit-exact agreement of every
    streaming reduction (site coverage, satellite activity, visible counts,
    packed bits) with reductions of
    :meth:`~repro.sim.visibility.VisibilityEngine.visibility` computed with
    culling disabled.  Sweeps chunk sizes across the degenerate corners
    (one sample per slab, a prime, the default, and larger than the grid)
    and repeats the sweep with the site track primed, pinning the cached
    ECI-track slicing path the experiment contexts use.  Fails outright if
    the cull never fired — a check that stops exercising culling is a
    broken check, not a passing one.
    """
    rng = gen.trial_rng(seed, 4)
    elements = list(gen.random_elements(rng, n_satellites, max_eccentricity=0.0))
    for _ in range(4):
        elements.append(
            OrbitalElements.from_degrees(
                altitude_km=550.0,
                inclination_deg=6.0,
                raan_deg=float(rng.uniform(0.0, 360.0)),
                mean_anomaly_deg=float(rng.uniform(0.0, 360.0)),
            )
        )
    # Latitudes bounded away from the equator: every satellite ground
    # track crosses the equator, so a near-equatorial site can reach ANY
    # shell and a single one would keep the injected 6 deg satellites
    # alive at satellite level.  |lat| >= 35 deg with masks >= 15 deg
    # leaves a worst-case 29 deg latitude gap against a <= 12.3 deg
    # footprint half-angle — the whole-satellite skip is guaranteed to
    # fire for every random draw.  (Fully random sites remain covered by
    # oracle.visibility; this oracle pins streaming/culling identity.)
    sites = [
        GroundSite(
            name=f"fused-site-{index}",
            latitude_deg=float(rng.choice([-1.0, 1.0]) * rng.uniform(35.0, 85.0)),
            longitude_deg=float(rng.uniform(-180.0, 180.0)),
            altitude_m=0.0,
            min_elevation_deg=float(rng.uniform(15.0, 40.0)),
        )
        for index in range(n_sites)
    ]
    sites.append(
        GroundSite(
            name="cull-polar",
            latitude_deg=79.0,
            longitude_deg=float(rng.uniform(-180.0, 180.0)),
            min_elevation_deg=25.0,
        )
    )
    count = int(duration_s // step_s)
    if count % 8 == 0:
        count += 3  # Keep the packed byte-padding path in play.
    grid = TimeGrid(duration_s=count * step_s, step_s=step_s)

    propagator = BatchPropagator(elements)
    reference = VisibilityEngine(grid).visibility(propagator, sites, cull=False)
    expect_coverage = reference.any(axis=1)
    expect_activity = reference.any(axis=0)
    expect_counts = reference.sum(axis=1)
    expect_packed = packed_visibility(
        propagator, sites, grid, cull=False
    ).site_masks()

    mismatched: List[str] = []
    culled_pairs = 0
    culled_satellites = 0
    for primed in (False, True):
        geometry = kernels.SiteGeometry(sites, grid)
        if primed:
            geometry.prime_track()
        for chunk in chunk_sizes:
            plan = kernels.plan_stream(propagator, geometry, grid, chunk_size=chunk)
            culled_pairs = plan.culled_pairs
            culled_satellites = plan.culled_satellites
            label = f"chunk={chunk}, primed={primed}"
            if not np.array_equal(
                kernels.stream_site_coverage(plan), expect_coverage
            ):
                mismatched.append(f"site_coverage ({label})")
            if not np.array_equal(
                kernels.stream_satellite_activity(
                    kernels.plan_stream(propagator, geometry, grid, chunk_size=chunk)
                ),
                expect_activity,
            ):
                mismatched.append(f"satellite_activity ({label})")
            if not np.array_equal(
                kernels.stream_visible_counts(
                    kernels.plan_stream(propagator, geometry, grid, chunk_size=chunk)
                ),
                expect_counts,
            ):
                mismatched.append(f"visible_counts ({label})")
            if not np.array_equal(
                packed_visibility(
                    propagator, sites, grid, chunk_size=chunk, geometry=geometry
                ).site_masks(),
                expect_packed,
            ):
                mismatched.append(f"packed_bits ({label})")
    if not culled_pairs or not culled_satellites:
        mismatched.append(
            f"cull never fired (pairs={culled_pairs}, "
            f"satellites={culled_satellites})"
        )

    details = {
        "sites": len(sites),
        "satellites": propagator.count,
        "samples": int(grid.count),
        "chunk_sizes": list(chunk_sizes),
        "culled_pairs": culled_pairs,
        "culled_satellites": culled_satellites,
        "mismatches": mismatched,
    }
    if mismatched:
        return failed("oracle.fused", **details)
    return passed("oracle.fused", **details)


def check_interval_agreement(
    seed: int,
    n_satellites: int = 16,
    n_sites: int = 5,
    duration_s: float = 14_400.0,
    step_s: float = 120.0,
    tolerance_s: float = 0.01,
) -> CheckResult:
    """Analytic contact intervals vs the dense grid engine.

    The interval engine's coarse scan *is* the grid kernel and each refined
    edge is clamped to its bracketing scan step, so two classes of agreement
    are checkable, one exact and one budgeted:

    * **bit-exact where both engines sample the same instants** — for every
      (site, satellite) pair, resampling the refined windows at the grid
      times must reproduce the grid mask bit for bit; per-pair contact
      (run) counts, per-site union masks, and per-site visible-satellite
      counts must match exactly;
    * **budgeted on continuous measures** — coverage fractions may differ
      by at most one time step per refined contact edge (two edges per
      window), and each coverage gap by at most ``2 * step_s``, because a
      refined edge moves at most one step away from its scan sample while
      staying inside the bracketing interval.

    Runs an all-circular batch (the propagator fast path the refinement
    evaluator also takes) and a mixed-eccentricity batch (the Kepler-solve
    path).  Fails outright if no contact was ever found — a vacuously
    green comparison is a broken check.

    On top of the raw-geometry checks, the downstream consumers are held to
    the same contract: the interval downlink scheduler must produce
    bit-identical assignments, downlinked volumes, and backlogs to the grid
    scheduler under every policy (decisions happen at grid cadence, where
    the resampling identity makes the candidate sets equal), and the
    interval capacity accountants must agree with the grid ones within the
    per-contact-edge budget.
    """
    from repro.sim.capacity import (
        spare_capacity_split,
        spare_capacity_split_intervals,
        utilization_from_intervals,
        utilization_from_visibility,
    )
    from repro.sim.coverage import gap_lengths_s
    from repro.sim.intervals import find_contact_intervals
    from repro.sim.scheduling import (
        DownlinkScheduler,
        IntervalDownlinkScheduler,
        SchedulingPolicy,
    )

    mismatches: List[str] = []
    total_contacts = 0
    samples = 0
    scheduling_comparisons = 0
    for batch_name, eccentricity_ceiling in (
        ("circular", 0.0),
        ("eccentric", gen.MAX_DOMAIN_ECCENTRICITY),
    ):
        rng = gen.trial_rng(seed, 5, 0 if eccentricity_ceiling == 0.0 else 1)
        elements = list(
            gen.random_elements(rng, n_satellites, eccentricity_ceiling)
        )
        sites = gen.random_sites(rng, n_sites)
        grid = TimeGrid(duration_s=duration_s, step_s=step_s)
        propagator = BatchPropagator(elements)
        reference = VisibilityEngine(grid).visibility(propagator, list(sites))
        contacts = find_contact_intervals(
            propagator, list(sites), grid, tolerance_s=tolerance_s
        )
        total_contacts += contacts.n_contacts
        samples = int(grid.count)
        times = grid.times_s
        span_total = contacts.span_s

        for s in range(len(sites)):
            for n in range(len(elements)):
                mask = reference[s, n]
                pair = contacts.pair(s, n)
                label = f"{batch_name}, site={s}, sat={n}"
                if not np.array_equal(pair.sample(times), mask):
                    mismatches.append(f"pair_resample ({label})")
                runs = int(mask[0]) + int(
                    np.count_nonzero(~mask[:-1] & mask[1:])
                )
                if contacts.pair_count(s, n) != runs:
                    mismatches.append(
                        f"contact_count ({label}): "
                        f"{contacts.pair_count(s, n)} != {runs}"
                    )
                budget = 2.0 * pair.count * step_s / span_total
                drift = abs(pair.coverage_fraction - float(mask.mean()))
                if drift > budget:
                    mismatches.append(
                        f"pair_coverage ({label}): |{drift:.3e}| > {budget:.3e}"
                    )

            site_mask = reference[s].any(axis=0)
            union = contacts.site_union(s)
            label = f"{batch_name}, site={s}"
            if not np.array_equal(union.sample(times), site_mask):
                mismatches.append(f"union_resample ({label})")
            if not np.array_equal(
                contacts.sample_counts(times, s), reference[s].sum(axis=0)
            ):
                mismatches.append(f"visible_counts ({label})")
            # Gap correspondence.  An interval gap containing >= 1 grid
            # sample matches a grid gap one-to-one (in temporal order, by
            # the resampling identity); a sample-free gap is a sub-step
            # hand-off hole the grid cannot represent and must be shorter
            # than the two-edge budget.
            grid_gaps = gap_lengths_s(site_mask, step_s)
            holes = union.complement()
            sampled = (
                np.searchsorted(times, holes.stops, side="left")
                - np.searchsorted(times, holes.starts, side="left")
            )
            lengths = holes.durations_s()
            visible_gaps = lengths[sampled > 0]
            micro_gaps = lengths[sampled == 0]
            if visible_gaps.size != grid_gaps.size:
                mismatches.append(
                    f"gap_count ({label}): "
                    f"{visible_gaps.size} != {grid_gaps.size}"
                )
            elif grid_gaps.size and (
                np.abs(visible_gaps - grid_gaps).max() > 2.0 * step_s
            ):
                mismatches.append(
                    f"gap_lengths ({label}): worst drift "
                    f"{np.abs(visible_gaps - grid_gaps).max():.2f} s "
                    f"> {2.0 * step_s:.2f} s"
                )
            if micro_gaps.size and micro_gaps.max() >= 2.0 * step_s:
                mismatches.append(
                    f"micro_gaps ({label}): sample-free gap of "
                    f"{micro_gaps.max():.2f} s >= {2.0 * step_s:.2f} s"
                )

        # Scheduling agreement — decisions run at grid cadence, so the
        # interval scheduler's candidate sets equal the grid masks and the
        # whole schedule must be bit-identical, floats included.
        for policy in SchedulingPolicy:
            grid_schedule = DownlinkScheduler(
                reference,
                grid,
                downlink_rate_mbps=800.0,
                generation_rate_mbps=20.0,
                policy=policy,
            ).run()
            interval_schedule = IntervalDownlinkScheduler(
                contacts,
                grid,
                downlink_rate_mbps=800.0,
                generation_rate_mbps=20.0,
                policy=policy,
            ).run()
            label = f"{batch_name}, policy={policy.value}"
            if not np.array_equal(
                grid_schedule.assignment, interval_schedule.assignment
            ):
                mismatches.append(f"schedule_assignment ({label})")
            if not np.array_equal(
                grid_schedule.downlinked_megabits,
                interval_schedule.downlinked_megabits,
            ):
                mismatches.append(f"schedule_downlinked ({label})")
            if not np.array_equal(
                grid_schedule.remaining_backlog_megabits,
                interval_schedule.remaining_backlog_megabits,
            ):
                mismatches.append(f"schedule_backlog ({label})")
            scheduling_comparisons += 1

        # Capacity agreement — continuous-time unions vs sampled means,
        # within the two-edges-per-window budget per satellite.
        windows_per_sat = (
            np.diff(contacts.pair_offsets)
            .reshape(len(sites), len(elements))
            .sum(axis=0)
        )
        capacity_budget = 2.0 * windows_per_sat * step_s / span_total
        idle_drift = np.abs(
            utilization_from_visibility(reference).per_satellite_idle_fraction
            - utilization_from_intervals(contacts).per_satellite_idle_fraction
        )
        if np.any(idle_drift > capacity_budget):
            mismatches.append(
                f"capacity_idle ({batch_name}): worst drift "
                f"{idle_drift.max():.3e} over budget"
            )
        party_names = ("alpha", "beta", "gamma")
        terminal_parties = [party_names[i % 3] for i in range(len(sites))]
        satellite_parties = [party_names[n % 3] for n in range(len(elements))]
        grid_ledger = spare_capacity_split(
            reference, terminal_parties, satellite_parties
        )
        interval_ledger = spare_capacity_split_intervals(
            contacts, terminal_parties, satellite_parties
        )
        # Spare time is a difference of two swept unions, so it carries
        # both unions' edge budgets.
        ledger_budget = 2.0 * capacity_budget
        for field in ("own_fraction", "spare_fraction", "idle_fraction"):
            ledger_drift = np.abs(
                getattr(grid_ledger, field) - getattr(interval_ledger, field)
            )
            if np.any(ledger_drift > ledger_budget):
                mismatches.append(
                    f"capacity_{field} ({batch_name}): worst drift "
                    f"{ledger_drift.max():.3e} over budget"
                )

    if total_contacts == 0:
        mismatches.append("no contacts found: the comparison is vacuous")

    details = {
        "sites": n_sites,
        "satellites": n_satellites,
        "samples": samples,
        "step_s": step_s,
        "tolerance_s": tolerance_s,
        "contacts": total_contacts,
        "scheduling_policies": [p.value for p in SchedulingPolicy],
        "scheduling_comparisons": scheduling_comparisons,
        "mismatches": mismatches,
    }
    if mismatches:
        return failed("oracle.intervals", **details)
    return passed("oracle.intervals", **details)


def check_backend_agreement(
    seed: int,
    n_satellites: int = 24,
    n_sites: int = 5,
    n_subsets: int = 8,
    duration_s: float = 14_400.0,
    step_s: float = 120.0,
) -> CheckResult:
    """Every available kernel backend vs straight-line numpy — bit-exact.

    The backend layer (:mod:`repro.sim.backends`) routes three hot
    operations: the threshold+reduce slab compare, the popcount-on-OR
    subset reduction, and the interval event-sweep accumulation.  Each is
    admissible only if it is **bit-identical** to the plain numpy
    formulation — an elementwise float64 compare, a pure integer
    OR/lookup/sum, and a float64 accumulation in a fixed (pre-sorted)
    array order respectively — so figure tables never depend on which
    backend executed them.

    Two tiers of evidence:

    * **op-level** — each backend's three primitives against straight-line
      numpy references (written here, independently of the registry's
      default implementation) on randomized inputs;
    * **end-to-end** — pool-wide and fleet-scoped
      :class:`~repro.sim.kernels.subsets.SubsetQuery` /
      :class:`~repro.sim.intervals.IntervalSubsetQuery` reductions under
      each backend against the numpy backend's results, over random
      subsets of random fleets.

    Backends that are registered but unavailable (e.g. ``numba`` without
    the package installed) are reported in the details and skipped — the
    check still passes, because availability is an environment property,
    not a correctness one.  CI runs a dedicated leg with numba installed
    so the compiled path is exercised there.
    """
    from repro.sim import backends
    from repro.sim.intervals import IntervalSubsetQuery, find_contact_intervals
    from repro.sim.kernels.subsets import SubsetQuery
    from repro.sim.visibility import packed_visibility

    rng = gen.trial_rng(seed, 7, 0)
    registered = backends.backend_names()
    availability = backends.available_backends()
    available = [name for name, ok in availability.items() if ok]
    numba_available = availability.get("numba", False)
    numba_reason = None
    if not numba_available:
        try:
            backends.get_backend("numba")
        except (RuntimeError, ValueError) as error:
            numba_reason = str(error)
    comparisons = 0
    mismatches: List[str] = []

    # -- op-level: randomized inputs, straight-line numpy references -------
    dots = rng.standard_normal((4, n_sites, 37))
    # Include exact ties so the >= edge is exercised.
    dots.ravel()[rng.integers(0, dots.size, size=16)] = 0.25
    thresholds = np.full((4, 1, 1), 0.25) + rng.standard_normal((4, 1, 1)) * (
        rng.random((4, 1, 1)) > 0.5
    )
    slab_ref = dots >= thresholds

    rows = rng.integers(
        0, 256, size=(n_sites, n_satellites, 23), dtype=np.uint8
    )
    table = backends.POPCOUNT_TABLE
    or1_ref = (
        table[np.bitwise_or.reduce(rows, axis=1)].sum(axis=1).astype(np.int64)
    )
    or0_ref = (
        table[np.bitwise_or.reduce(rows, axis=0)].sum(axis=1).astype(np.int64)
    )

    n_groups = 6
    starts = rng.uniform(0.0, 1000.0, size=(n_groups, 9))
    stops = starts + rng.uniform(0.0, 200.0, size=starts.shape)
    k = starts.size
    times = np.concatenate([starts.ravel(), stops.ravel()])
    deltas = np.concatenate(
        [np.ones(k, dtype=np.int64), -np.ones(k, dtype=np.int64)]
    )
    groups = np.tile(np.repeat(np.arange(n_groups), 9), 2)
    order = np.lexsort((deltas, times, groups))
    st, sd, sg = times[order], deltas[order], groups[order]
    counts = np.cumsum(sd)
    spans = np.diff(st)
    same = sg[1:] == sg[:-1]
    weights = np.where(same & (counts[:-1] > 0), spans, 0.0)
    sweep_ref = np.bincount(sg[:-1], weights=weights, minlength=n_groups)

    for name in available:
        backend = backends.get_backend(name)
        checks = (
            ("threshold_slab", backend.threshold_slab(dots, thresholds), slab_ref),
            ("or_popcount_axis1", backend.or_popcount(rows, axis=1), or1_ref),
            ("or_popcount_axis0", backend.or_popcount(rows, axis=0), or0_ref),
            ("sweep_accumulate", backend.sweep_accumulate(st, sd, sg, n_groups),
             sweep_ref),
        )
        for op, got, want in checks:
            comparisons += 1
            if got.dtype != want.dtype or not np.array_equal(got, want):
                mismatches.append(f"{op} ({name}) != numpy reference")

    # -- end-to-end: subset queries on both engines under each backend -----
    elements = list(gen.random_elements(rng, n_satellites, 0.0))
    sites = list(gen.random_sites(rng, n_sites))
    grid = TimeGrid(duration_s=duration_s, step_s=step_s)
    propagator = BatchPropagator(elements)
    visibility = packed_visibility(propagator, sites, grid)
    contacts = find_contact_intervals(propagator, sites, grid)

    fleet = np.sort(
        rng.choice(n_satellites, size=max(2, n_satellites // 2), replace=False)
    )
    subsets = [
        rng.choice(fleet, size=int(rng.integers(1, fleet.size + 1)),
                   replace=False)
        for _ in range(n_subsets)
    ] + [fleet, fleet[:0]]

    results = {}
    for name in available:
        with backends.use_backend(name):
            grid_query = SubsetQuery.from_visibility(visibility, fleet)
            interval_query = IntervalSubsetQuery.from_contacts(contacts, fleet)
            results[name] = [
                (
                    grid_query.coverage_fractions(subset),
                    grid_query.satellite_active_fractions(subset),
                    interval_query.coverage_fractions(subset),
                    interval_query.satellite_active_fractions(subset),
                )
                for subset in subsets
            ]
    reference = results["numpy"]
    for name in available:
        if name == "numpy":
            continue
        for index, (got_tuple, want_tuple) in enumerate(
            zip(results[name], reference)
        ):
            for got, want in zip(got_tuple, want_tuple):
                comparisons += 1
                if not np.array_equal(got, want):
                    mismatches.append(
                        f"subset_query[{index}] ({name}) != numpy"
                    )

    details = {
        "backends": list(registered),
        "available": list(available),
        "numba_available": numba_available,
        "numba_unavailable_reason": numba_reason,
        "comparisons": comparisons,
        "subsets": len(subsets),
        "mismatches": mismatches,
    }
    if mismatches:
        return failed("oracle.backends", **details)
    return passed("oracle.backends", **details)
