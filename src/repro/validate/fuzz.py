"""Seeded, stdlib-only property fuzzing of physical invariants.

A deliberately small property-testing harness — no hypothesis dependency,
no shrinking — built on the same stateless ``SeedSequence`` spawning as the
Monte-Carlo runner: invariant *k*, trial *t* of a run seeded with *s* draws
from ``SeedSequence(s, spawn_key=(FUZZ_STREAM, k, t))``, so a red trial is
replayed exactly by :func:`replay_trial` with the triple the report
records, regardless of trial count or ordering.

The invariants are physics the figures silently rely on:

* ``radius_bounds`` — propagated radii stay inside the ellipse's
  [a(1-e), a(1+e)] band (a vectorization bug that bends radii bends every
  coverage footprint).
* ``unit_norms`` — the visibility engine's direction vectors are unit
  length (the cos-threshold comparison assumes it).
* ``scalar_batch_state`` — batch positions match the scalar reference on
  random short horizons (the 24 h sweep lives in
  :func:`repro.validate.oracles.check_propagator_agreement`).
* ``visibility_split`` — computing visibility over a grid equals
  concatenating the tensors of the grid split at a random sample; also the
  chunk-size identity (chunking is pure tiling).
* ``raan_drift_sign`` — nodal regression for prograde orbits, advance for
  retrograde, batch rates equal to scalar rates.
* ``kepler_wrap`` — Kepler solutions converge and agree scalar-vs-batch
  across mean anomalies spanning wrap boundaries.
* ``interval_algebra`` — the :class:`~repro.sim.intervals.IntervalSet`
  algebra on adversarial inputs (zero-length intervals, touching
  endpoints, full-horizon contacts, empty sets): normalization,
  De Morgan / complement identities, inclusion-exclusion, and
  sample-membership against a brute-force point-in-interval loop.
* ``intervals_shm_roundtrip`` — exporting a random
  :class:`~repro.sim.intervals.ContactIntervals` into shared memory and
  attaching it back is bit-exact (offsets, times, flags), zero-copy
  (attached arrays are segment views), and the pickle fallback never
  ships a process-local segment handle.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np

from repro.obs import get_logger
from repro.orbits.kepler import solve_kepler, solve_kepler_batch
from repro.orbits.propagator import BatchPropagator, J2Propagator, j2_secular_rates
from repro.sim.clock import TimeGrid
from repro.sim.visibility import VisibilityEngine
from repro.validate import gen
from repro.validate.result import CheckResult, failed, passed

_LOG = get_logger(__name__)

#: Spawn-key stream id reserved for the fuzz harness (oracle checks use 1-3).
FUZZ_STREAM = 100

#: An invariant takes one trial rng and raises AssertionError on violation.
Invariant = Callable[[np.random.Generator], None]


def invariant_radius_bounds(rng: np.random.Generator) -> None:
    elements = gen.random_elements(
        rng, int(rng.integers(1, 12)), max_eccentricity=gen.MAX_DOMAIN_ECCENTRICITY
    )
    grid = gen.random_grid(rng)
    radii = np.linalg.norm(
        BatchPropagator(elements).positions_eci(grid.times_s), axis=-1
    )
    axes = np.array([e.semi_major_axis_m for e in elements])[:, None]
    eccs = np.array([e.eccentricity for e in elements])[:, None]
    low = axes * (1.0 - eccs) * (1.0 - 1e-9)
    high = axes * (1.0 + eccs) * (1.0 + 1e-9)
    assert np.all(radii >= low), (
        f"radius below perigee bound by {float((low - radii).max()):.3e} m"
    )
    assert np.all(radii <= high), (
        f"radius above apogee bound by {float((radii - high).max()):.3e} m"
    )


def invariant_unit_norms(rng: np.random.Generator) -> None:
    elements = gen.random_elements(
        rng, int(rng.integers(1, 12)), max_eccentricity=gen.MAX_DOMAIN_ECCENTRICITY
    )
    grid = gen.random_grid(rng)
    units = BatchPropagator(elements).unit_positions_eci(grid.times_s)
    norms = np.linalg.norm(units, axis=-1)
    worst = float(np.abs(norms - 1.0).max())
    assert worst < 1e-9, f"unit-vector norm off by {worst:.3e}"


def invariant_scalar_batch_state(rng: np.random.Generator) -> None:
    elements = gen.random_elements(
        rng, int(rng.integers(1, 6)), max_eccentricity=gen.MAX_DOMAIN_ECCENTRICITY
    )
    times = gen.random_grid(rng, min_samples=4, max_samples=32).times_s
    batch = BatchPropagator(elements).positions_eci(times)
    for sat, element in enumerate(elements):
        propagator = J2Propagator(element)
        for t, time_s in enumerate(times):
            error_m = float(
                np.linalg.norm(batch[sat, t] - propagator.position_eci(time_s))
            )
            assert error_m < 1e-3, (
                f"sat {sat} at t={time_s:.0f}s: scalar/batch differ by "
                f"{error_m:.3e} m"
            )


def invariant_visibility_split(rng: np.random.Generator) -> None:
    elements = gen.random_elements(rng, int(rng.integers(2, 10)))
    sites = gen.random_sites(rng, int(rng.integers(1, 5)))
    grid = gen.random_grid(rng, min_samples=8, max_samples=96)
    whole = VisibilityEngine(grid).visibility(elements, sites)

    # Chunk-size identity: chunking is pure tiling of the time axis.
    chunk = int(rng.integers(1, grid.count + 1))
    chunked = VisibilityEngine(grid, chunk_size=chunk).visibility(elements, sites)
    assert np.array_equal(whole, chunked), f"chunk_size={chunk} changed the tensor"

    # Time-grid split identity: [0, k) ++ [k, T) == [0, T).  Integer-second
    # steps (see gen.random_grid) make the split sample times bit-identical.
    split = int(rng.integers(1, grid.count))
    head = TimeGrid(start_s=0.0, duration_s=split * grid.step_s, step_s=grid.step_s)
    tail = TimeGrid(
        start_s=split * grid.step_s,
        duration_s=(grid.count - split) * grid.step_s,
        step_s=grid.step_s,
    )
    stitched = np.concatenate(
        [
            VisibilityEngine(head).visibility(elements, sites),
            VisibilityEngine(tail).visibility(elements, sites),
        ],
        axis=2,
    )
    assert np.array_equal(whole, stitched), (
        f"splitting the grid at sample {split} changed the tensor"
    )


def invariant_raan_drift_sign(rng: np.random.Generator) -> None:
    elements = gen.random_elements(
        rng, int(rng.integers(2, 16)), max_eccentricity=gen.MAX_DOMAIN_ECCENTRICITY
    )
    batch = BatchPropagator(elements)
    for index, element in enumerate(elements):
        rates = j2_secular_rates(element)
        inclination = element.inclination_deg
        if inclination < 89.9:
            assert rates.raan_rate < 0.0, (
                f"prograde orbit (i={inclination:.2f}) must regress, "
                f"got {rates.raan_rate:+.3e} rad/s"
            )
        elif inclination > 90.1:
            assert rates.raan_rate > 0.0, (
                f"retrograde orbit (i={inclination:.2f}) must advance, "
                f"got {rates.raan_rate:+.3e} rad/s"
            )
        batch_rate = float(batch.raan_rate[index])
        assert math.isclose(batch_rate, rates.raan_rate, rel_tol=1e-12, abs_tol=1e-18), (
            f"batch RAAN rate {batch_rate:+.6e} != scalar {rates.raan_rate:+.6e}"
        )


def invariant_kepler_wrap(rng: np.random.Generator) -> None:
    two_pi = 2.0 * math.pi
    # Mean anomalies hugging the wrap boundary from both sides, plus
    # uniform draws over several revolutions (including negatives).
    boundary = np.array([-1e-9, 0.0, 1e-9, two_pi - 1e-9, two_pi, two_pi + 1e-9])
    uniform = rng.uniform(-2.0 * two_pi, 4.0 * two_pi, size=24)
    means = np.concatenate([boundary, uniform])
    eccs = rng.uniform(0.0, gen.MAX_DOMAIN_ECCENTRICITY, size=means.size)

    batch = solve_kepler_batch(means, eccs)
    for mean, ecc, batch_e in zip(means, eccs, batch):
        scalar_e = solve_kepler(float(mean), float(ecc))
        residual = abs(scalar_e - ecc * math.sin(scalar_e) - (float(mean) % two_pi))
        assert residual < 1e-10, (
            f"solve_kepler residual {residual:.3e} at M={mean:.6f}, e={ecc:.4f}"
        )
        assert math.isclose(scalar_e, float(batch_e), rel_tol=0.0, abs_tol=1e-9), (
            f"scalar {scalar_e!r} != batch {float(batch_e)!r} "
            f"at M={mean:.6f}, e={ecc:.4f}"
        )


def invariant_interval_algebra(rng: np.random.Generator) -> None:
    from repro.sim.intervals import IntervalSet

    start_s = float(rng.uniform(-1_000.0, 1_000.0))
    span = float(rng.uniform(10.0, 100_000.0))
    end_s = start_s + span

    def random_set() -> IntervalSet:
        """An adversarial interval soup: zero-length windows, touching
        endpoints, full-horizon contacts, and windows straddling (or
        entirely outside) the horizon — everything normalization must
        absorb."""
        starts: List[float] = []
        stops: List[float] = []
        for _ in range(int(rng.integers(0, 10))):
            kind = int(rng.integers(0, 4))
            if kind == 0:  # zero-length (must be dropped)
                at = float(rng.uniform(start_s, end_s))
                starts.append(at)
                stops.append(at)
            elif kind == 1:  # the full horizon
                starts.append(start_s)
                stops.append(end_s)
            elif kind == 2:  # straddles or misses the horizon (clipping)
                a = float(rng.uniform(start_s - span, end_s + span))
                starts.append(a)
                stops.append(a + float(rng.uniform(0.0, span)))
            else:  # interior window
                a = float(rng.uniform(start_s, end_s))
                starts.append(a)
                stops.append(a + float(rng.uniform(0.0, end_s - a)))
        if rng.random() < 0.5:  # a touching pair (must merge into one)
            mid = float(rng.uniform(start_s, end_s))
            width = float(rng.uniform(0.0, span / 4.0))
            starts.extend([mid - width, mid])
            stops.extend([mid, mid + width])
        return IntervalSet(starts, stops, start_s, end_s)

    a = random_set()
    b = random_set()
    empty = IntervalSet.empty(start_s, end_s)
    full = IntervalSet.full(start_s, end_s)

    # Normalization: clipped to the horizon, zero-length dropped, sorted,
    # pairwise disjoint with touching neighbours merged.
    for name, s in (("a", a), ("b", b)):
        assert np.all(s.starts < s.stops), f"{name}: zero-length kept"
        assert np.all(s.starts >= start_s) and np.all(s.stops <= end_s), (
            f"{name}: not clipped to horizon"
        )
        assert np.all(s.starts[1:] > s.stops[:-1]), (
            f"{name}: overlapping or touching neighbours survived"
        )
        assert math.isclose(
            s.total_s, float(s.durations_s().sum()), abs_tol=1e-9
        ), f"{name}: total_s != sum of durations"

    # Complement: involution, and the empty/full poles map to each other.
    assert a.complement().complement() == a, "complement not an involution"
    assert empty.complement() == full, "complement of empty != full"
    assert full.complement() == empty, "complement of full != empty"

    # Lattice identities with the poles, idempotence, commutativity.
    assert a.union(empty) == a and a.intersect(full) == a, "identity laws"
    assert a.union(full) == full and a.intersect(empty) == empty, (
        "absorption by the poles"
    )
    assert a.union(a) == a and a.intersect(a) == a, "idempotence"
    assert a.union(b) == b.union(a), "union not commutative"
    assert a.intersect(b) == b.intersect(a), "intersect not commutative"
    assert a.union(a.complement()) == full, "A | ~A != full"
    assert a.intersect(a.complement()) == empty, "A & ~A != empty"

    # Inclusion-exclusion on measures.
    lhs = a.union(b).total_s + a.intersect(b).total_s
    assert math.isclose(lhs, a.total_s + b.total_s, abs_tol=1e-6), (
        f"|A|+|B| = {a.total_s + b.total_s:.9f} != "
        f"|A|B|+|A&B| = {lhs:.9f}"
    )

    # Pointwise semantics: membership sampling must match a brute-force
    # point-in-interval loop, and distribute over union/intersection.
    times = rng.uniform(start_s - 1.0, end_s + 1.0, size=48)
    sampled = a.sample(times)
    for t, got in zip(times, sampled):
        manual = any(
            lo <= t < hi for lo, hi in zip(a.starts, a.stops)
        )
        assert bool(got) == manual, f"sample({t}) = {got}, brute force {manual}"
    assert np.array_equal(
        a.union(b).sample(times), a.sample(times) | b.sample(times)
    ), "union does not sample as OR"
    assert np.array_equal(
        a.intersect(b).sample(times), a.sample(times) & b.sample(times)
    ), "intersect does not sample as AND"


def invariant_intervals_shm_roundtrip(rng: np.random.Generator) -> None:
    import pickle

    from repro.runner.shared import (
        attach_contact_intervals,
        share_contact_intervals,
    )
    from repro.sim.intervals import ContactIntervals

    n_sites = int(rng.integers(1, 5))
    n_sats = int(rng.integers(1, 7))
    start_s = float(rng.uniform(-1_000.0, 1_000.0))
    span = float(rng.uniform(10.0, 100_000.0))
    end_s = start_s + span

    # A random CSR window soup: per-pair counts from 0 (including the
    # all-empty contacts that exercise the 1-byte-segment guard) with
    # sorted rises and random truncation flags.
    counts = rng.integers(0, 5, size=n_sites * n_sats)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    total = int(offsets[-1])
    rises = np.empty(total)
    sets = np.empty(total)
    for pair in range(n_sites * n_sats):
        lo, hi = offsets[pair], offsets[pair + 1]
        pair_rises = np.sort(rng.uniform(start_s, end_s, size=hi - lo))
        rises[lo:hi] = pair_rises
        sets[lo:hi] = pair_rises + rng.uniform(0.0, span / 10.0, size=hi - lo)
    contacts = ContactIntervals(
        n_sites=n_sites,
        n_satellites=n_sats,
        start_s=start_s,
        end_s=end_s,
        rise_s=rises,
        set_s=np.minimum(sets, end_s),
        truncated_start=rng.random(total) < 0.2,
        truncated_end=rng.random(total) < 0.2,
        pair_offsets=offsets,
    )

    segment, handle = share_contact_intervals(contacts)
    try:
        attached_segment, attached = attach_contact_intervals(handle)
        try:
            assert attached.n_sites == contacts.n_sites
            assert attached.n_satellites == contacts.n_satellites
            assert attached.start_s == contacts.start_s
            assert attached.end_s == contacts.end_s
            for name in (
                "rise_s",
                "set_s",
                "pair_offsets",
                "truncated_start",
                "truncated_end",
            ):
                original = getattr(contacts, name)
                roundtrip = getattr(attached, name)
                assert roundtrip.dtype == original.dtype, (
                    f"{name}: dtype {roundtrip.dtype} != {original.dtype}"
                )
                assert np.array_equal(roundtrip, original), (
                    f"{name}: values changed across the segment round-trip"
                )
                assert roundtrip.base is not None, (
                    f"{name}: attached array is a copy, not a segment view"
                )
            # The pickle path (fallback transport) must ship values intact
            # and never carry the process-local segment handle.
            clone = pickle.loads(pickle.dumps(attached))
            assert clone.segment is None, "pickled contacts kept a segment"
            assert np.array_equal(clone.rise_s, contacts.rise_s)
            assert np.array_equal(clone.pair_offsets, contacts.pair_offsets)
        finally:
            del attached
            attached_segment.close()
    finally:
        segment.close()
        segment.unlink()


#: Registered invariants in a stable order (the index is the spawn key).
#: Append only — the index feeds the replay spawn key, so reordering or
#: inserting mid-list silently reseeds every later invariant.
INVARIANTS: Dict[str, Invariant] = {
    "radius_bounds": invariant_radius_bounds,
    "unit_norms": invariant_unit_norms,
    "scalar_batch_state": invariant_scalar_batch_state,
    "visibility_split": invariant_visibility_split,
    "raan_drift_sign": invariant_raan_drift_sign,
    "kepler_wrap": invariant_kepler_wrap,
    "interval_algebra": invariant_interval_algebra,
    "intervals_shm_roundtrip": invariant_intervals_shm_roundtrip,
}


def _invariant_index(name: str) -> int:
    return list(INVARIANTS).index(name)


def replay_trial(seed: int, invariant: str, trial: int) -> None:
    """Re-run one (seed, invariant, trial) combination exactly.

    Raises the original AssertionError if the trial still fails — the
    debugging entry point for a red fuzz report.
    """
    rng = gen.trial_rng(seed, FUZZ_STREAM, _invariant_index(invariant), trial)
    INVARIANTS[invariant](rng)


def run_invariant(seed: int, name: str, trials: int) -> CheckResult:
    """Run one invariant for ``trials`` independent seeded trials."""
    failures: List[Dict[str, object]] = []
    index = _invariant_index(name)
    for trial in range(trials):
        rng = gen.trial_rng(seed, FUZZ_STREAM, index, trial)
        try:
            INVARIANTS[name](rng)
        except AssertionError as error:
            failures.append({"trial": trial, "message": str(error)})
            _LOG.warning("fuzz.%s trial %d failed: %s", name, trial, error)
    details = {
        "trials": trials,
        "seed": seed,
        "failures": failures,
        "replay": f"repro.validate.fuzz.replay_trial({seed}, {name!r}, <trial>)",
    }
    if failures:
        return failed(f"fuzz.{name}", **details)
    return passed(f"fuzz.{name}", **details)


def run_all_invariants(seed: int, trials: int) -> List[CheckResult]:
    """Run every registered invariant; one :class:`CheckResult` each."""
    return [run_invariant(seed, name, trials) for name in INVARIANTS]
