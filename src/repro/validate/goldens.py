"""Golden-figure regression snapshots.

Small fixed-seed runs of every figure experiment (fig1a..fig6 plus the §2
sharing-upside measurement), captured as committed JSON under
``src/repro/validate/goldens/`` and compared field-by-field on every
``repro validate`` run.  The runner's order-independent seeding makes each
snapshot a pure function of :data:`GOLDEN_CONFIG`, so any drift means the
simulation pipeline changed behavior — exactly what a perf PR must prove
it did *not* do.

Tolerances: integers, strings, and booleans compare exactly; floats
compare with ``rel_tol`` :data:`DEFAULT_RTOL` / ``abs_tol``
:data:`DEFAULT_ATOL` (loose enough to absorb last-ulp BLAS/einsum
differences across platforms, tight enough that any real behavioral
change — a changed sample, a shifted contact edge — trips the gate).

Updating: run ``python -m repro validate --update-goldens`` after an
*intentional* behavior change, eyeball the JSON diff, and say in the PR
why every drifted field moved.  Never update to silence a failure you
cannot explain.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.common import ExperimentConfig
from repro.obs import get_logger
from repro.validate.result import CheckResult, failed, passed

_LOG = get_logger(__name__)

#: Golden-file layout version (independent of the validation-report schema).
GOLDEN_SCHEMA_VERSION = 1

#: Where the committed snapshots live (inside the package so the suite
#: works from a source checkout with PYTHONPATH=src).
GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

#: The fixed configuration every golden is captured under: small enough to
#: run in seconds, big enough that all reduction paths execute.  One day at
#: 600 s steps, 2 Monte-Carlo runs, the default seed.
GOLDEN_CONFIG = ExperimentConfig(runs=2, step_s=600.0, seed=2024, duration_s=86_400.0)

#: Float comparison tolerances (see module docstring).
DEFAULT_RTOL = 1e-6
DEFAULT_ATOL = 1e-9


def _points_dict(result: Any) -> Dict[str, Any]:
    """Snapshot a result whose payload is a list of point dataclasses."""
    return {"points": [dataclasses.asdict(point) for point in result.points]}


def _capture_fig1a() -> Dict[str, Any]:
    from repro.orbits.elements import OrbitalElements
    from repro.orbits.groundtrack import (
        compute_ground_track,
        nodal_shift_deg_per_orbit,
    )

    elements = OrbitalElements.from_degrees(altitude_km=546.0, inclination_deg=53.0)
    track = compute_ground_track(elements, 3 * 3600.0, step_s=30.0)
    return {
        "period_min": elements.period_s / 60.0,
        "max_latitude_deg": track.max_latitude_deg,
        "nodal_shift_deg_per_orbit": nodal_shift_deg_per_orbit(elements),
        "samples": len(track),
        "first_longitude_deg": float(track.longitudes_deg[0]),
        "last_longitude_deg": float(track.longitudes_deg[-1]),
    }


def _capture_fig2() -> Dict[str, Any]:
    from repro.experiments.fig2_coverage_vs_size import run_fig2

    return _points_dict(run_fig2(GOLDEN_CONFIG))


def _capture_fig3() -> Dict[str, Any]:
    from repro.experiments.fig3_idle_vs_cities import run_fig3

    return _points_dict(run_fig3(GOLDEN_CONFIG))


def _capture_fig4a() -> Dict[str, Any]:
    from repro.experiments.fig4a_single_addition import run_fig4a

    return _points_dict(run_fig4a(GOLDEN_CONFIG))


def _capture_fig4b() -> Dict[str, Any]:
    from repro.experiments.fig4b_phase_sweep import run_fig4b

    result = run_fig4b(GOLDEN_CONFIG)
    snapshot = _points_dict(result)
    snapshot["best_offset_deg"] = result.best_offset_deg()
    return snapshot


def _capture_fig4c() -> Dict[str, Any]:
    from repro.experiments.fig4c_design_factors import run_fig4c

    return {"gains_hours": dict(run_fig4c(GOLDEN_CONFIG).gains_hours)}


def _capture_fig5() -> Dict[str, Any]:
    from repro.experiments.fig5_withdrawal import run_fig5

    return _points_dict(run_fig5(GOLDEN_CONFIG))


def _capture_fig6() -> Dict[str, Any]:
    from repro.experiments.fig6_party_skew import run_fig6

    return _points_dict(run_fig6(GOLDEN_CONFIG))


def _capture_sharing() -> Dict[str, Any]:
    from repro.experiments.sharing_upside import run_sharing_upside

    result = run_sharing_upside(GOLDEN_CONFIG)
    return {
        "upside": dataclasses.asdict(result.upside),
        "satellite_multiplier": result.upside.satellite_multiplier,
        "calibration": [[size, coverage] for size, coverage in result.calibration],
    }


#: Every golden experiment, in capture order.  Keys are the snapshot file
#: stems and the ``golden.<name>`` check names.
GOLDEN_EXPERIMENTS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "fig1a": _capture_fig1a,
    "fig2": _capture_fig2,
    "fig3": _capture_fig3,
    "fig4a": _capture_fig4a,
    "fig4b": _capture_fig4b,
    "fig4c": _capture_fig4c,
    "fig5": _capture_fig5,
    "fig6": _capture_fig6,
    "sharing": _capture_sharing,
}


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def capture_snapshot(name: str) -> Dict[str, Any]:
    """Run one golden experiment and return its snapshot document."""
    values = GOLDEN_EXPERIMENTS[name]()
    return {
        "schema": GOLDEN_SCHEMA_VERSION,
        "name": name,
        "config": dataclasses.asdict(GOLDEN_CONFIG),
        "values": values,
    }


def write_snapshot(name: str, snapshot: Dict[str, Any]) -> str:
    """Write a snapshot to its committed location; returns the path."""
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    path = golden_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(name: str) -> Optional[Dict[str, Any]]:
    """Load a committed snapshot, or None when it has never been captured."""
    path = golden_path(name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_values(
    actual: Any,
    golden: Any,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    path: str = "values",
) -> List[str]:
    """Field-by-field comparison; returns mismatch descriptions (empty = ok).

    Dicts and lists recurse; floats compare with tolerances; everything
    else (ints, strings, bools, None) compares exactly.  JSON has one
    number type, so an int on one side and a float on the other compare
    numerically — except booleans, which never equal numbers here.
    """
    if isinstance(actual, dict) and isinstance(golden, dict):
        mismatches = []
        for key in sorted(set(actual) | set(golden)):
            if key not in actual:
                mismatches.append(f"{path}.{key}: missing from actual")
            elif key not in golden:
                mismatches.append(f"{path}.{key}: not in golden")
            else:
                mismatches.extend(
                    compare_values(
                        actual[key], golden[key], rtol, atol, f"{path}.{key}"
                    )
                )
        return mismatches
    if isinstance(actual, (list, tuple)) and isinstance(golden, (list, tuple)):
        if len(actual) != len(golden):
            return [f"{path}: length {len(actual)} != golden {len(golden)}"]
        mismatches = []
        for index, (a, g) in enumerate(zip(actual, golden)):
            mismatches.extend(compare_values(a, g, rtol, atol, f"{path}[{index}]"))
        return mismatches
    actual_is_bool = isinstance(actual, bool)
    golden_is_bool = isinstance(golden, bool)
    if not actual_is_bool and not golden_is_bool:
        if isinstance(actual, (int, float)) and isinstance(golden, (int, float)):
            if math.isclose(actual, golden, rel_tol=rtol, abs_tol=atol):
                return []
            return [f"{path}: {actual!r} != golden {golden!r} (beyond tolerance)"]
    if actual_is_bool == golden_is_bool and actual == golden:
        return []
    return [f"{path}: {actual!r} != golden {golden!r}"]


def check_golden(
    name: str,
    update: bool = False,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> CheckResult:
    """Capture one golden experiment and compare (or rewrite) its snapshot."""
    actual = capture_snapshot(name)
    if update:
        path = write_snapshot(name, actual)
        _LOG.info("golden %s updated at %s", name, path)
        return passed(f"golden.{name}", updated=True, path=path)

    golden = load_snapshot(name)
    if golden is None:
        return failed(
            f"golden.{name}",
            error="no committed snapshot; run with --update-goldens",
            path=golden_path(name),
        )
    if golden.get("schema") != GOLDEN_SCHEMA_VERSION:
        return failed(
            f"golden.{name}",
            error=(
                f"snapshot schema {golden.get('schema')!r} != "
                f"{GOLDEN_SCHEMA_VERSION}; re-capture with --update-goldens"
            ),
        )
    # The config is part of the contract: a snapshot captured under a
    # different configuration is not comparable, flag it before diffing.
    config_mismatches = compare_values(
        actual["config"], golden.get("config"), rtol=0.0, atol=0.0, path="config"
    )
    if config_mismatches:
        return failed(f"golden.{name}", config_mismatches=config_mismatches)
    mismatches = compare_values(actual["values"], golden["values"], rtol, atol)
    details = {
        "rtol": rtol,
        "atol": atol,
        "fields_compared": _count_leaves(golden["values"]),
        "mismatches": mismatches,
    }
    if mismatches:
        return failed(f"golden.{name}", **details)
    return passed(f"golden.{name}", **details)


def _count_leaves(value: Any) -> int:
    if isinstance(value, dict):
        return sum(_count_leaves(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_count_leaves(v) for v in value)
    return 1


def check_all_goldens(update: bool = False) -> List[CheckResult]:
    """Run every golden experiment; one :class:`CheckResult` each."""
    return [check_golden(name, update=update) for name in GOLDEN_EXPERIMENTS]
