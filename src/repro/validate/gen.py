"""Seeded random inputs for the validation suite.

Every oracle cross-check and fuzz invariant draws its inputs from a
``numpy.random.Generator`` seeded through a ``SeedSequence`` spawn key, so
any failure is reproducible from the (seed, invariant, trial) triple that
the report records — no hidden global state, no dependency on execution
order (the same stateless-spawn discipline as :mod:`repro.runner`).

The generators stay inside the simulator's physical domain: LEO altitudes,
near-circular eccentricities (the repo's propagator fast path and the
visibility shortcut are both specified for e <= 0.02), inclinations away
from the exact poles, and integer-second time steps (so that splitting a
time grid reproduces bit-identical sample times — see
``fuzz.visibility_split``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ground.sites import GroundSite
from repro.orbits.elements import OrbitalElements
from repro.sim.clock import TimeGrid

#: Altitude band the generators draw from (LEO, km).
ALTITUDE_KM_RANGE = (400.0, 1400.0)

#: Inclination band (degrees); avoids the exact equator/poles only so the
#: RAAN-drift sign invariant has a determinate sign to assert.
INCLINATION_DEG_RANGE = (5.0, 175.0)

#: The eccentricity ceiling of the simulator's stated domain.
MAX_DOMAIN_ECCENTRICITY = 0.02


def trial_rng(seed: int, *spawn_key: int) -> np.random.Generator:
    """A reproducible generator for one (seed, check, trial) combination."""
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=spawn_key))


def random_elements(
    rng: np.random.Generator,
    count: int,
    max_eccentricity: float = 0.0,
) -> List[OrbitalElements]:
    """Randomized LEO element sets.

    With ``max_eccentricity`` zero every orbit is circular, exercising the
    batch propagator's fast path; a positive ceiling mixes circular and
    eccentric orbits so the general Kepler-solve path runs in the same
    batch.
    """
    elements = []
    for _ in range(count):
        if max_eccentricity > 0.0 and rng.random() < 0.5:
            eccentricity = float(rng.uniform(0.0, max_eccentricity))
        else:
            eccentricity = 0.0
        elements.append(
            OrbitalElements.from_degrees(
                altitude_km=float(rng.uniform(*ALTITUDE_KM_RANGE)),
                inclination_deg=float(rng.uniform(*INCLINATION_DEG_RANGE)),
                raan_deg=float(rng.uniform(0.0, 360.0)),
                arg_perigee_deg=float(rng.uniform(0.0, 360.0)),
                mean_anomaly_deg=float(rng.uniform(0.0, 360.0)),
                eccentricity=eccentricity,
            )
        )
    return elements


def random_sites(rng: np.random.Generator, count: int) -> List[GroundSite]:
    """Randomized ground sites with varied latitudes and elevation masks."""
    return [
        GroundSite(
            name=f"fuzz-site-{index}",
            latitude_deg=float(rng.uniform(-85.0, 85.0)),
            longitude_deg=float(rng.uniform(-180.0, 180.0)),
            altitude_m=0.0,
            min_elevation_deg=float(rng.uniform(5.0, 40.0)),
        )
        for index in range(count)
    ]


def random_grid(
    rng: np.random.Generator,
    min_samples: int = 16,
    max_samples: int = 192,
) -> TimeGrid:
    """A random time grid with an integer-second step.

    Integer steps make every sample time exactly representable, so a grid
    split at sample k reproduces the identical times (``k*step + j*step ==
    (k+j)*step`` holds exactly in float64 for integer steps and sample
    counts below 2**53).
    """
    step_s = float(rng.integers(30, 601))
    count = int(rng.integers(min_samples, max_samples + 1))
    return TimeGrid(duration_s=step_s * count, step_s=step_s)
