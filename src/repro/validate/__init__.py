"""repro.validate — the simulator's trust anchor.

Differential testing infrastructure that lets every fast path in the
repository be checked against a slow-but-exact oracle, plus seeded
property fuzzing of physical invariants and golden-figure regression
gates.  ``python -m repro validate [--quick|--full]`` runs all of it; any
PR that optimizes a hot path (float32 kernels, caches, sharding) is
expected to cite a green ``repro validate --full`` run.

* :mod:`repro.validate.oracles` — scalar-vs-batch propagation,
  topocentric-vs-shortcut visibility (edge-budgeted), packed-vs-unpacked
  reductions.
* :mod:`repro.validate.fuzz` — the stdlib-only seeded property harness
  and its invariant registry.
* :mod:`repro.validate.goldens` — committed fixed-seed snapshots of all
  nine figure experiments with explicit tolerances.
* :mod:`repro.validate.runner` — quick/full profiles, orchestration, and
  the stdout summary.
* :mod:`repro.validate.result` — :class:`CheckResult` /
  :class:`ValidationReport` and the report schema.
"""

from repro.validate.result import (
    VALIDATION_SCHEMA_VERSION,
    CheckResult,
    ValidationReport,
    validate_validation_report,
)
from repro.validate.runner import (
    DEFAULT_SEED,
    PROFILES,
    ValidationProfile,
    render_validation_report,
    run_validation,
)

__all__ = [
    "CheckResult",
    "DEFAULT_SEED",
    "PROFILES",
    "VALIDATION_SCHEMA_VERSION",
    "ValidationProfile",
    "ValidationReport",
    "render_validation_report",
    "run_validation",
    "validate_validation_report",
]
