"""Ground tracks and revisit analysis (the geometry behind Fig. 1a).

A LEO satellite's ground track drifts westward every orbit because Earth
rotates beneath the fixed orbital plane — the paper's core geometric
premise.  This module computes tracks and the revisit metrics that follow
from them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.constants import EARTH_ROTATION_RATE
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import gmst_rad, subsatellite_point
from repro.orbits.propagator import BatchPropagator, j2_secular_rates


@dataclass(frozen=True)
class GroundTrack:
    """A sampled ground track."""

    times_s: np.ndarray
    latitudes_deg: np.ndarray
    longitudes_deg: np.ndarray

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def max_latitude_deg(self) -> float:
        return float(np.max(np.abs(self.latitudes_deg)))

    def ascending_node_longitudes(self) -> np.ndarray:
        """Longitudes where the track crosses the equator northbound."""
        lat = self.latitudes_deg
        crossings = (lat[:-1] <= 0.0) & (lat[1:] > 0.0)
        return self.longitudes_deg[:-1][crossings]


def compute_ground_track(
    elements: OrbitalElements,
    duration_s: float,
    step_s: float = 30.0,
    gmst_at_epoch_rad: float = 0.0,
) -> GroundTrack:
    """Sample a satellite's subsatellite point over a horizon.

    Raises:
        ValueError: On non-positive duration or step.
    """
    if duration_s <= 0.0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if step_s <= 0.0:
        raise ValueError(f"step must be positive, got {step_s}")
    times = np.arange(0.0, duration_s, step_s)
    propagator = BatchPropagator([elements])
    positions = propagator.positions_eci(times)[0]  # (T, 3)
    theta = gmst_rad(times, gmst_at_epoch_rad)
    latitudes, longitudes = subsatellite_point(positions, theta)
    return GroundTrack(
        times_s=times,
        latitudes_deg=np.asarray(latitudes),
        longitudes_deg=np.asarray(longitudes),
    )


def nodal_shift_deg_per_orbit(elements: OrbitalElements) -> float:
    """Westward shift of the ascending node's longitude per orbit.

    Earth rotates east under the plane at the sidereal rate while the plane
    itself precesses at the J2 nodal rate; the per-orbit longitude shift is
    the difference, times the nodal period.
    """
    rates = j2_secular_rates(elements)
    # Nodal period: time between ascending nodes (accounts for perigee drift).
    nodal_rate = rates.mean_anomaly_rate + rates.arg_perigee_rate
    nodal_period_s = 2.0 * math.pi / nodal_rate
    relative_rate = EARTH_ROTATION_RATE - rates.raan_rate
    return math.degrees(relative_rate * nodal_period_s)


def revisit_count_per_day(
    elements: OrbitalElements,
    coverage_half_width_deg: float,
) -> float:
    """Expected equator crossings per day that land within a longitude band.

    A crude analytic bound on how often one satellite can revisit a region
    of a given longitude half-width: orbits/day times the fraction of nodal
    longitudes that fall inside the band (two crossings per orbit).
    """
    if not 0.0 < coverage_half_width_deg <= 180.0:
        raise ValueError("half width must be in (0, 180] degrees")
    orbits_per_day = 86_400.0 / elements.period_s
    in_band_fraction = min(1.0, coverage_half_width_deg / 180.0)
    return 2.0 * orbits_per_day * in_band_fraction
