"""Kepler-equation solvers.

Kepler's equation ``M = E - e * sin(E)`` has no closed-form inverse; this
module provides a Newton-Raphson solver in two flavours: a scalar reference
(:func:`solve_kepler`) and a vectorized numpy version
(:func:`solve_kepler_batch`) used by the batch propagator.

For the near-circular orbits that dominate LEO constellations (e < 0.02)
Newton converges to machine precision in two or three iterations.
"""

from __future__ import annotations

import math

import numpy as np

#: Convergence tolerance on |E - e*sin(E) - M| in radians.
DEFAULT_TOLERANCE = 1e-12

#: Iteration cap; Newton on Kepler's equation with a decent starter converges
#: in < 10 iterations for all e < 1.
MAX_ITERATIONS = 50


def solve_kepler(
    mean_anomaly_rad: float,
    eccentricity: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """Solve Kepler's equation for the eccentric anomaly (scalar).

    Args:
        mean_anomaly_rad: Mean anomaly, radians (any value; wrapped internally).
        eccentricity: Eccentricity in [0, 1).
        tolerance: Convergence tolerance on the residual, radians.

    Returns:
        Eccentric anomaly in radians, in the same revolution as the wrapped
        mean anomaly (i.e. in [0, 2*pi)).

    Raises:
        ValueError: If the eccentricity is outside [0, 1).
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")

    mean = math.fmod(mean_anomaly_rad, 2.0 * math.pi)
    if mean < 0.0:
        mean += 2.0 * math.pi

    # Vallado's starter: E0 = M + e*sin(M) is within ~e^2 of the root.
    eccentric = mean + eccentricity * math.sin(mean)
    for _ in range(MAX_ITERATIONS):
        residual = eccentric - eccentricity * math.sin(eccentric) - mean
        if abs(residual) < tolerance:
            break
        derivative = 1.0 - eccentricity * math.cos(eccentric)
        eccentric -= residual / derivative
    return eccentric


def solve_kepler_batch(
    mean_anomaly_rad: np.ndarray,
    eccentricity: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 12,
) -> np.ndarray:
    """Vectorized Kepler solver.

    Args:
        mean_anomaly_rad: Array of mean anomalies, radians (any shape).
        eccentricity: Array broadcastable against ``mean_anomaly_rad``.
        tolerance: Convergence tolerance (max-norm over the whole batch).
        max_iterations: Fixed iteration cap; 12 Newton steps exceed machine
            precision for every e < 0.9.

    Returns:
        Array of eccentric anomalies with the broadcast shape.
    """
    mean = np.mod(np.asarray(mean_anomaly_rad, dtype=np.float64), 2.0 * np.pi)
    ecc = np.asarray(eccentricity, dtype=np.float64)
    if np.any(ecc < 0.0) or np.any(ecc >= 1.0):
        raise ValueError("all eccentricities must be in [0, 1)")

    eccentric = mean + ecc * np.sin(mean)
    if eccentric.size == 0:
        return eccentric
    for _ in range(max_iterations):
        residual = eccentric - ecc * np.sin(eccentric) - mean
        if np.max(np.abs(residual)) < tolerance:
            break
        eccentric -= residual / (1.0 - ecc * np.cos(eccentric))
    return eccentric
