"""Time and coordinate frames.

The simulator works in three frames:

* **ECI** (Earth-centered inertial): where orbital propagation happens.
* **ECEF** (Earth-centered Earth-fixed): rotates with Earth; ground sites are
  fixed here.  ECI and ECEF are related by a rotation about the z-axis by the
  Greenwich Mean Sidereal Time (GMST) angle.
* **Geodetic** (latitude / longitude / altitude on the WGS-84 ellipsoid).

Simulation time is measured in seconds from a simulation epoch; the epoch's
absolute Earth orientation is captured by ``gmst_at_epoch_rad``.  For
statistical coverage experiments the epoch GMST only rotates the constellation
in longitude, so the default of 0 is fine; :func:`gmst_from_jd` supports
anchoring a simulation to a real UTC instant when TLE work needs it.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from repro.constants import (
    EARTH_ECC_SQ,
    EARTH_RADIUS_M,
    EARTH_ROTATION_RATE,
)

ArrayLike = Union[float, np.ndarray]

TWO_PI = 2.0 * math.pi


def gmst_from_jd(julian_date_ut1: float) -> float:
    """Greenwich Mean Sidereal Time (radians) from a UT1 Julian date.

    Uses the IAU 1982 GMST polynomial (Vallado, eq. 3-45).  Accuracy is far
    better than the coverage experiments require.
    """
    t = (julian_date_ut1 - 2451545.0) / 36525.0
    gmst_s = (
        67310.54841
        + (876600.0 * 3600.0 + 8640184.812866) * t
        + 0.093104 * t * t
        - 6.2e-6 * t * t * t
    )
    gmst = math.fmod(math.radians(gmst_s / 240.0), TWO_PI)
    if gmst < 0.0:
        gmst += TWO_PI
    return gmst


def gmst_rad(sim_time_s: ArrayLike, gmst_at_epoch_rad: float = 0.0) -> ArrayLike:
    """GMST angle at a simulation time (seconds from the simulation epoch)."""
    return np.mod(gmst_at_epoch_rad + EARTH_ROTATION_RATE * np.asarray(sim_time_s), TWO_PI)


def eci_to_ecef(position_eci: np.ndarray, gmst: ArrayLike) -> np.ndarray:
    """Rotate ECI positions into the Earth-fixed frame.

    Args:
        position_eci: Array of shape (..., 3).
        gmst: GMST angle(s) in radians, broadcastable against the leading
            dimensions of ``position_eci``.

    Returns:
        Array of the same shape in ECEF coordinates.
    """
    position_eci = np.asarray(position_eci, dtype=np.float64)
    theta = np.asarray(gmst, dtype=np.float64)
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    x = position_eci[..., 0]
    y = position_eci[..., 1]
    out = np.empty_like(position_eci)
    out[..., 0] = cos_t * x + sin_t * y
    out[..., 1] = -sin_t * x + cos_t * y
    out[..., 2] = position_eci[..., 2]
    return out


def ecef_to_eci(position_ecef: np.ndarray, gmst: ArrayLike) -> np.ndarray:
    """Rotate ECEF positions into the inertial frame (inverse of eci_to_ecef)."""
    return eci_to_ecef(position_ecef, -np.asarray(gmst))


def geodetic_to_ecef(
    latitude_deg: ArrayLike,
    longitude_deg: ArrayLike,
    altitude_m: ArrayLike = 0.0,
) -> np.ndarray:
    """Convert WGS-84 geodetic coordinates to ECEF (meters).

    Accepts scalars or arrays; returns an array of shape (..., 3).
    """
    lat = np.radians(np.asarray(latitude_deg, dtype=np.float64))
    lon = np.radians(np.asarray(longitude_deg, dtype=np.float64))
    alt = np.asarray(altitude_m, dtype=np.float64)

    sin_lat = np.sin(lat)
    prime_vertical = EARTH_RADIUS_M / np.sqrt(1.0 - EARTH_ECC_SQ * sin_lat**2)
    x = (prime_vertical + alt) * np.cos(lat) * np.cos(lon)
    y = (prime_vertical + alt) * np.cos(lat) * np.sin(lon)
    z = (prime_vertical * (1.0 - EARTH_ECC_SQ) + alt) * sin_lat
    return np.stack(np.broadcast_arrays(x, y, z), axis=-1)


def ecef_to_geodetic(position_ecef: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert ECEF positions to geodetic (lat_deg, lon_deg, alt_m).

    Uses Bowring's iterative method; three iterations reach sub-millimeter
    accuracy for LEO altitudes.
    """
    pos = np.asarray(position_ecef, dtype=np.float64)
    x, y, z = pos[..., 0], pos[..., 1], pos[..., 2]
    lon = np.arctan2(y, x)
    hypot_xy = np.hypot(x, y)

    lat = np.arctan2(z, hypot_xy * (1.0 - EARTH_ECC_SQ))
    for _ in range(3):
        sin_lat = np.sin(lat)
        prime_vertical = EARTH_RADIUS_M / np.sqrt(1.0 - EARTH_ECC_SQ * sin_lat**2)
        alt = hypot_xy / np.cos(lat) - prime_vertical
        lat = np.arctan2(z, hypot_xy * (1.0 - EARTH_ECC_SQ * prime_vertical / (prime_vertical + alt)))

    sin_lat = np.sin(lat)
    prime_vertical = EARTH_RADIUS_M / np.sqrt(1.0 - EARTH_ECC_SQ * sin_lat**2)
    alt = hypot_xy / np.cos(lat) - prime_vertical
    return np.degrees(lat), np.degrees(lon), alt


def subsatellite_point(
    position_eci: np.ndarray, gmst: ArrayLike
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the (lat_deg, lon_deg) ground point directly beneath a satellite.

    Uses the geocentric (spherical) latitude, which is what coverage footprint
    geometry needs; the difference from geodetic latitude (< 0.2 deg) is
    irrelevant at footprint scales of hundreds of km.
    """
    ecef = eci_to_ecef(position_eci, gmst)
    x, y, z = ecef[..., 0], ecef[..., 1], ecef[..., 2]
    lat = np.degrees(np.arctan2(z, np.hypot(x, y)))
    lon = np.degrees(np.arctan2(y, x))
    return lat, lon
