"""Classical orbital elements and anomaly conversions.

The :class:`OrbitalElements` dataclass is the library's canonical description
of an orbit at an epoch.  Angles are stored in **radians** internally; the
constructor helpers accept degrees because constellation design parameters
(inclination 53°, phases 30° apart, …) are naturally quoted in degrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.constants import EARTH_RADIUS_M, MU_EARTH, mean_motion_rad_s

TWO_PI = 2.0 * math.pi


def wrap_angle(angle_rad: float) -> float:
    """Wrap an angle to the range [0, 2*pi)."""
    wrapped = math.fmod(angle_rad, TWO_PI)
    if wrapped < 0.0:
        wrapped += TWO_PI
    if wrapped >= TWO_PI:  # Tiny negatives round up to exactly 2*pi.
        wrapped = 0.0
    return wrapped


@dataclass(frozen=True)
class OrbitalElements:
    """Classical (Keplerian) orbital elements at a reference epoch.

    Attributes:
        semi_major_axis_m: Semi-major axis in meters (> Earth radius for the
            orbits this library cares about, but any positive value is
            accepted so tests can construct degenerate cases).
        eccentricity: Orbital eccentricity in [0, 1).
        inclination_rad: Inclination in radians, [0, pi].
        raan_rad: Right ascension of the ascending node, radians.
        arg_perigee_rad: Argument of perigee, radians.
        mean_anomaly_rad: Mean anomaly at epoch, radians.
        epoch_s: Epoch as seconds relative to the simulation epoch.
    """

    semi_major_axis_m: float
    eccentricity: float
    inclination_rad: float
    raan_rad: float
    arg_perigee_rad: float
    mean_anomaly_rad: float
    epoch_s: float = 0.0

    def __post_init__(self) -> None:
        if self.semi_major_axis_m <= 0.0:
            raise ValueError(
                f"semi-major axis must be positive, got {self.semi_major_axis_m}"
            )
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValueError(
                f"eccentricity must be in [0, 1), got {self.eccentricity}"
            )
        if not 0.0 <= self.inclination_rad <= math.pi:
            raise ValueError(
                f"inclination must be in [0, pi], got {self.inclination_rad}"
            )

    @classmethod
    def from_degrees(
        cls,
        *,
        altitude_km: float,
        inclination_deg: float,
        raan_deg: float = 0.0,
        arg_perigee_deg: float = 0.0,
        mean_anomaly_deg: float = 0.0,
        eccentricity: float = 0.0,
        epoch_s: float = 0.0,
    ) -> "OrbitalElements":
        """Build elements from constellation-design style parameters.

        ``altitude_km`` is the altitude above the mean equatorial radius; the
        semi-major axis is ``EARTH_RADIUS_M + altitude_km * 1000``.
        """
        return cls(
            semi_major_axis_m=EARTH_RADIUS_M + altitude_km * 1000.0,
            eccentricity=eccentricity,
            inclination_rad=math.radians(inclination_deg),
            raan_rad=wrap_angle(math.radians(raan_deg)),
            arg_perigee_rad=wrap_angle(math.radians(arg_perigee_deg)),
            mean_anomaly_rad=wrap_angle(math.radians(mean_anomaly_deg)),
            epoch_s=epoch_s,
        )

    @property
    def altitude_km(self) -> float:
        """Altitude above the mean equatorial radius, km (circular orbits)."""
        return (self.semi_major_axis_m - EARTH_RADIUS_M) / 1000.0

    @property
    def inclination_deg(self) -> float:
        return math.degrees(self.inclination_rad)

    @property
    def raan_deg(self) -> float:
        return math.degrees(self.raan_rad)

    @property
    def mean_anomaly_deg(self) -> float:
        return math.degrees(self.mean_anomaly_rad)

    @property
    def mean_motion_rad_s(self) -> float:
        """Keplerian mean motion, rad/s."""
        return mean_motion_rad_s(self.semi_major_axis_m)

    @property
    def period_s(self) -> float:
        """Keplerian orbital period, seconds."""
        return TWO_PI / self.mean_motion_rad_s

    @property
    def semi_latus_rectum_m(self) -> float:
        return self.semi_major_axis_m * (1.0 - self.eccentricity**2)

    @property
    def perigee_altitude_km(self) -> float:
        radius = self.semi_major_axis_m * (1.0 - self.eccentricity)
        return (radius - EARTH_RADIUS_M) / 1000.0

    @property
    def apogee_altitude_km(self) -> float:
        radius = self.semi_major_axis_m * (1.0 + self.eccentricity)
        return (radius - EARTH_RADIUS_M) / 1000.0

    def with_phase_shift(self, delta_mean_anomaly_deg: float) -> "OrbitalElements":
        """Return a copy shifted in phase (mean anomaly) within the same plane."""
        return replace(
            self,
            mean_anomaly_rad=wrap_angle(
                self.mean_anomaly_rad + math.radians(delta_mean_anomaly_deg)
            ),
        )

    def with_altitude_km(self, altitude_km: float) -> "OrbitalElements":
        """Return a copy at a different circular altitude."""
        return replace(self, semi_major_axis_m=EARTH_RADIUS_M + altitude_km * 1000.0)

    def with_inclination_deg(self, inclination_deg: float) -> "OrbitalElements":
        """Return a copy with a different inclination."""
        return replace(self, inclination_rad=math.radians(inclination_deg))

    def with_raan_deg(self, raan_deg: float) -> "OrbitalElements":
        """Return a copy in a plane rotated to a different RAAN."""
        return replace(self, raan_rad=wrap_angle(math.radians(raan_deg)))


def mean_to_eccentric_anomaly(mean_anomaly_rad: float, eccentricity: float) -> float:
    """Convert mean anomaly to eccentric anomaly by solving Kepler's equation."""
    # Local import avoids a cycle: kepler.py has no dependency back on us.
    from repro.orbits.kepler import solve_kepler

    return solve_kepler(mean_anomaly_rad, eccentricity)


def eccentric_to_true_anomaly(eccentric_anomaly_rad: float, eccentricity: float) -> float:
    """Convert eccentric anomaly to true anomaly."""
    half = eccentric_anomaly_rad / 2.0
    return wrap_angle(
        2.0
        * math.atan2(
            math.sqrt(1.0 + eccentricity) * math.sin(half),
            math.sqrt(1.0 - eccentricity) * math.cos(half),
        )
    )


def true_to_eccentric_anomaly(true_anomaly_rad: float, eccentricity: float) -> float:
    """Convert true anomaly to eccentric anomaly."""
    half = true_anomaly_rad / 2.0
    return wrap_angle(
        2.0
        * math.atan2(
            math.sqrt(1.0 - eccentricity) * math.sin(half),
            math.sqrt(1.0 + eccentricity) * math.cos(half),
        )
    )


def eccentric_to_mean_anomaly(eccentric_anomaly_rad: float, eccentricity: float) -> float:
    """Convert eccentric anomaly to mean anomaly (Kepler's equation forward)."""
    return wrap_angle(
        eccentric_anomaly_rad - eccentricity * math.sin(eccentric_anomaly_rad)
    )


def mean_to_true_anomaly(mean_anomaly_rad: float, eccentricity: float) -> float:
    """Convert mean anomaly directly to true anomaly."""
    eccentric = mean_to_eccentric_anomaly(mean_anomaly_rad, eccentricity)
    return eccentric_to_true_anomaly(eccentric, eccentricity)
