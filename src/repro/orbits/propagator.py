"""Two-body + J2-secular orbit propagation.

Two implementations with identical semantics:

* :class:`J2Propagator` — readable scalar reference for a single satellite.
* :class:`BatchPropagator` — numpy implementation that propagates an entire
  constellation over a time grid in one shot; this is what the coverage
  engine uses (a week of 2000 satellites at 60 s steps is ~2e7 state
  evaluations).

The force model is Keplerian two-body motion plus the *secular* effects of
Earth's J2 oblateness: nodal regression (RAAN drift), apsidal rotation
(argument-of-perigee drift) and the mean-motion correction.  Short-periodic
J2 terms and drag are omitted — over the one-week horizons of the paper's
experiments they perturb positions by a few km, far below the ~1000 km scale
of coverage footprints (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.constants import EARTH_RADIUS_M, J2, MU_EARTH
from repro.obs import metrics
from repro.obs.trace import span
from repro.orbits.elements import (
    OrbitalElements,
    eccentric_to_true_anomaly,
    wrap_angle,
)
from repro.orbits.kepler import solve_kepler, solve_kepler_batch

#: Total (satellite, time) state evaluations across all batch propagations.
_STATE_EVALS = metrics.counter("orbits.propagator.state_evaluations")


@dataclass(frozen=True)
class J2Rates:
    """Secular drift rates (rad/s) induced by J2 for a given orbit."""

    raan_rate: float
    arg_perigee_rate: float
    mean_anomaly_rate: float  # Total rate: Keplerian n plus the J2 correction.


def j2_secular_rates(elements: OrbitalElements) -> J2Rates:
    """Compute the secular J2 drift rates for one orbit (Vallado, sec. 9.6)."""
    n = elements.mean_motion_rad_s
    p = elements.semi_latus_rectum_m
    cos_i = math.cos(elements.inclination_rad)
    sin_i = math.sin(elements.inclination_rad)
    factor = 1.5 * J2 * (EARTH_RADIUS_M / p) ** 2 * n
    raan_rate = -factor * cos_i
    arg_perigee_rate = factor * (2.0 - 2.5 * sin_i**2)
    mean_anomaly_rate = n + factor * math.sqrt(1.0 - elements.eccentricity**2) * (
        1.0 - 1.5 * sin_i**2
    )
    return J2Rates(raan_rate, arg_perigee_rate, mean_anomaly_rate)


def _perifocal_to_eci_rotation(
    raan_rad: float, inclination_rad: float, arg_perigee_rad: float
) -> np.ndarray:
    """3x3 rotation matrix from the perifocal (PQW) frame to ECI."""
    cos_o, sin_o = math.cos(raan_rad), math.sin(raan_rad)
    cos_i, sin_i = math.cos(inclination_rad), math.sin(inclination_rad)
    cos_w, sin_w = math.cos(arg_perigee_rad), math.sin(arg_perigee_rad)
    return np.array(
        [
            [
                cos_o * cos_w - sin_o * sin_w * cos_i,
                -cos_o * sin_w - sin_o * cos_w * cos_i,
                sin_o * sin_i,
            ],
            [
                sin_o * cos_w + cos_o * sin_w * cos_i,
                -sin_o * sin_w + cos_o * cos_w * cos_i,
                -cos_o * sin_i,
            ],
            [sin_w * sin_i, cos_w * sin_i, cos_i],
        ]
    )


class J2Propagator:
    """Scalar reference propagator for one satellite.

    Example:
        >>> from repro.orbits import OrbitalElements
        >>> elements = OrbitalElements.from_degrees(altitude_km=550, inclination_deg=53)
        >>> propagator = J2Propagator(elements)
        >>> position, velocity = propagator.state_eci(3600.0)
    """

    def __init__(self, elements: OrbitalElements) -> None:
        self.elements = elements
        self._rates = j2_secular_rates(elements)

    def elements_at(self, time_s: float) -> OrbitalElements:
        """Return the osculating (secularly drifted) elements at a time."""
        dt = time_s - self.elements.epoch_s
        return OrbitalElements(
            semi_major_axis_m=self.elements.semi_major_axis_m,
            eccentricity=self.elements.eccentricity,
            inclination_rad=self.elements.inclination_rad,
            raan_rad=wrap_angle(self.elements.raan_rad + self._rates.raan_rate * dt),
            arg_perigee_rad=wrap_angle(
                self.elements.arg_perigee_rad + self._rates.arg_perigee_rate * dt
            ),
            mean_anomaly_rad=wrap_angle(
                self.elements.mean_anomaly_rad + self._rates.mean_anomaly_rate * dt
            ),
            epoch_s=time_s,
        )

    def state_eci(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return (position_m, velocity_m_s) in ECI at a simulation time."""
        current = self.elements_at(time_s)
        ecc = current.eccentricity
        eccentric = solve_kepler(current.mean_anomaly_rad, ecc)
        true_anomaly = eccentric_to_true_anomaly(eccentric, ecc)

        p = current.semi_latus_rectum_m
        radius = p / (1.0 + ecc * math.cos(true_anomaly))
        position_pqw = np.array(
            [radius * math.cos(true_anomaly), radius * math.sin(true_anomaly), 0.0]
        )
        speed_factor = math.sqrt(MU_EARTH / p)
        velocity_pqw = np.array(
            [
                -speed_factor * math.sin(true_anomaly),
                speed_factor * (ecc + math.cos(true_anomaly)),
                0.0,
            ]
        )
        rotation = _perifocal_to_eci_rotation(
            current.raan_rad, current.inclination_rad, current.arg_perigee_rad
        )
        return rotation @ position_pqw, rotation @ velocity_pqw

    def position_eci(self, time_s: float) -> np.ndarray:
        """Return the ECI position (meters) at a simulation time."""
        return self.state_eci(time_s)[0]


class BatchPropagator:
    """Vectorized propagation of many satellites over a time grid.

    All per-satellite elements are stored as flat numpy arrays; propagation to
    a time grid of T instants returns an (N, T, 3) ECI position array (or the
    caller can ask for time chunks to bound memory — the visibility engine
    does).
    """

    def __init__(self, elements: Sequence[OrbitalElements]) -> None:
        if not elements:
            raise ValueError("BatchPropagator needs at least one satellite")
        self.count = len(elements)
        self.semi_major_axis_m = np.array([e.semi_major_axis_m for e in elements])
        self.eccentricity = np.array([e.eccentricity for e in elements])
        self.inclination_rad = np.array([e.inclination_rad for e in elements])
        self.raan_rad = np.array([e.raan_rad for e in elements])
        self.arg_perigee_rad = np.array([e.arg_perigee_rad for e in elements])
        self.mean_anomaly_rad = np.array([e.mean_anomaly_rad for e in elements])
        self.epoch_s = np.array([e.epoch_s for e in elements])

        n = np.sqrt(MU_EARTH / self.semi_major_axis_m**3)
        p = self.semi_major_axis_m * (1.0 - self.eccentricity**2)
        cos_i = np.cos(self.inclination_rad)
        sin_i = np.sin(self.inclination_rad)
        factor = 1.5 * J2 * (EARTH_RADIUS_M / p) ** 2 * n
        self.raan_rate = -factor * cos_i
        self.arg_perigee_rate = factor * (2.0 - 2.5 * sin_i**2)
        self.mean_anomaly_rate = n + factor * np.sqrt(1.0 - self.eccentricity**2) * (
            1.0 - 1.5 * sin_i**2
        )
        self._refresh_derived()

    def _refresh_derived(self) -> None:
        """Hoist per-satellite values that every propagation call needs.

        These were recomputed on every chunked call; with the streaming
        visibility kernels propagating in ~64-sample chunks that trig would
        run hundreds of times per run.  Derived from the element arrays, so
        must be refreshed whenever those change (:meth:`subset`).
        """
        self._cos_i = np.cos(self.inclination_rad)
        self._sin_i = np.sin(self.inclination_rad)
        self._u0 = self.arg_perigee_rad + self.mean_anomaly_rad
        self._u_rate = self.arg_perigee_rate + self.mean_anomaly_rate
        #: True when every orbit is exactly circular.  Gates the circular
        #: fast path and the pair-culling satellite subsetting (the batch
        #: Kepler solve converges batch-globally, so subsets of eccentric
        #: pools are not guaranteed bit-identical; circular pools skip the
        #: solver entirely).
        self.all_circular = bool(np.all(self.eccentricity == 0.0))

    def _latitude_args(self, times_s: np.ndarray):
        """Shared propagation core.

        Returns (radius, cos_u, sin_u, raan) as (N, T) arrays where ``u`` is
        the argument of latitude.  Circular constellations (every e == 0, the
        overwhelmingly common case here) take an exact fast path that skips
        the Kepler solve and the perifocal trig: with e == 0 the true anomaly
        equals the mean anomaly and the radius is the semi-major axis, so
        ``u = omega(t) + M(t)`` directly.
        """
        times = np.atleast_1d(np.asarray(times_s, dtype=np.float64))
        dt = times[None, :] - self.epoch_s[:, None]  # (N, T)
        raan = self.raan_rad[:, None] + self.raan_rate[:, None] * dt

        if self.all_circular:
            u = self._u0[:, None] + self._u_rate[:, None] * dt
            radius = np.broadcast_to(
                self.semi_major_axis_m[:, None], u.shape
            )
            return radius, np.cos(u), np.sin(u), raan

        mean = self.mean_anomaly_rad[:, None] + self.mean_anomaly_rate[:, None] * dt
        ecc = self.eccentricity[:, None]
        eccentric = solve_kepler_batch(mean, ecc)
        cos_e = np.cos(eccentric)
        sin_e = np.sin(eccentric)

        # True anomaly via the half-angle-free formulation:
        #   cos v = (cos E - e) / (1 - e cos E);  sin v = sqrt(1-e^2) sin E / (1 - e cos E)
        one_minus = 1.0 - ecc * cos_e
        cos_v = (cos_e - ecc) / one_minus
        sin_v = np.sqrt(1.0 - ecc**2) * sin_e / one_minus
        radius = self.semi_major_axis_m[:, None] * one_minus  # (N, T)

        # Argument of latitude u = omega(t) + v, with drifting omega.
        arg_perigee = (
            self.arg_perigee_rad[:, None] + self.arg_perigee_rate[:, None] * dt
        )
        cos_w = np.cos(arg_perigee)
        sin_w = np.sin(arg_perigee)
        cos_u = cos_w * cos_v - sin_w * sin_v
        sin_u = sin_w * cos_v + cos_w * sin_v
        return radius, cos_u, sin_u, raan

    def _assemble_eci(self, radius, cos_u, sin_u, raan) -> np.ndarray:
        """Rotate argument-of-latitude coordinates into ECI: (N, T, 3)."""
        cos_o = np.cos(raan)
        sin_o = np.sin(raan)
        cos_i = self._cos_i[:, None]
        sin_i = self._sin_i[:, None]

        out = np.empty(radius.shape + (3,))
        # x = r (cos O cos u - sin O sin u cos i); reuse temporaries in-place
        # to keep peak memory at ~4 (N, T) arrays.
        sin_u_cos_i = sin_u * cos_i
        out[..., 0] = radius * (cos_o * cos_u - sin_o * sin_u_cos_i)
        out[..., 1] = radius * (sin_o * cos_u + cos_o * sin_u_cos_i)
        out[..., 2] = radius * (sin_u * sin_i)
        return out

    def positions_eci(self, times_s: np.ndarray) -> np.ndarray:
        """Propagate every satellite to every time.

        Args:
            times_s: 1-D array of T simulation times (seconds).

        Returns:
            Array of shape (N, T, 3): ECI positions in meters.
        """
        with span("propagation.batch"):
            radius, cos_u, sin_u, raan = self._latitude_args(times_s)
            out = self._assemble_eci(radius, cos_u, sin_u, raan)
        _STATE_EVALS.inc(out.shape[0] * out.shape[1])
        return out

    def unit_positions_eci(self, times_s: np.ndarray) -> np.ndarray:
        """Like :meth:`positions_eci` but normalized to unit vectors.

        Coverage tests only need directions; returning unit vectors lets the
        visibility engine compare dot products against a cosine threshold
        without re-normalizing.  Unit vectors are assembled directly (radius
        set to 1) rather than normalizing after the fact.
        """
        with span("propagation.batch"):
            out = self.unit_positions_eci_unspanned(times_s)
        return out

    def unit_positions_eci_unspanned(self, times_s: np.ndarray) -> np.ndarray:
        """:meth:`unit_positions_eci` without the span record.

        The streaming visibility kernels propagate in ~64-sample chunks — a
        week-long reduction is ~80 calls, and a span record per chunk would
        flood the tracer's record ring (the kernels' own ``visibility.*``
        span wraps the whole loop instead).  State evaluations still count.
        """
        radius, cos_u, sin_u, raan = self._latitude_args(times_s)
        out = self._assemble_eci(np.ones_like(radius), cos_u, sin_u, raan)
        _STATE_EVALS.inc(out.shape[0] * out.shape[1])
        return out

    def unit_positions_at(
        self, sat_indices: np.ndarray, times_s: np.ndarray
    ) -> np.ndarray:
        """Unit ECI directions for paired (satellite, time) queries.

        Unlike the grid methods above, which evaluate *every* satellite at
        *every* time, this evaluates satellite ``sat_indices[k]`` at time
        ``times_s[k]`` only — the access pattern of the contact-interval
        root-finder, where each rise/set edge refines one (pair, time)
        bracket.  Returns a (K, 3) array of unit vectors.
        """
        idx = np.asarray(sat_indices, dtype=np.intp)
        times = np.asarray(times_s, dtype=np.float64)
        if idx.shape != times.shape:
            raise ValueError("sat_indices and times_s must have the same shape")
        dt = times - self.epoch_s[idx]
        raan = self.raan_rad[idx] + self.raan_rate[idx] * dt

        if self.all_circular:
            u = self._u0[idx] + self._u_rate[idx] * dt
            cos_u = np.cos(u)
            sin_u = np.sin(u)
        else:
            mean = self.mean_anomaly_rad[idx] + self.mean_anomaly_rate[idx] * dt
            ecc = self.eccentricity[idx]
            eccentric = solve_kepler_batch(mean, ecc)
            cos_e = np.cos(eccentric)
            sin_e = np.sin(eccentric)
            one_minus = 1.0 - ecc * cos_e
            cos_v = (cos_e - ecc) / one_minus
            sin_v = np.sqrt(1.0 - ecc**2) * sin_e / one_minus
            arg_perigee = self.arg_perigee_rad[idx] + self.arg_perigee_rate[idx] * dt
            cos_w = np.cos(arg_perigee)
            sin_w = np.sin(arg_perigee)
            cos_u = cos_w * cos_v - sin_w * sin_v
            sin_u = sin_w * cos_v + cos_w * sin_v

        cos_o = np.cos(raan)
        sin_o = np.sin(raan)
        cos_i = self._cos_i[idx]
        sin_i = self._sin_i[idx]
        out = np.empty(times.shape + (3,))
        sin_u_cos_i = sin_u * cos_i
        out[..., 0] = cos_o * cos_u - sin_o * sin_u_cos_i
        out[..., 1] = sin_o * cos_u + cos_o * sin_u_cos_i
        out[..., 2] = sin_u * sin_i
        _STATE_EVALS.inc(times.size)
        return out

    def subset(self, indices: np.ndarray) -> "BatchPropagator":
        """Return a new propagator restricted to the given satellite indices."""
        clone = object.__new__(BatchPropagator)
        clone.count = int(np.asarray(indices).size)
        if clone.count == 0:
            raise ValueError("subset must keep at least one satellite")
        for name in (
            "semi_major_axis_m",
            "eccentricity",
            "inclination_rad",
            "raan_rad",
            "arg_perigee_rad",
            "mean_anomaly_rad",
            "epoch_s",
            "raan_rate",
            "arg_perigee_rate",
            "mean_anomaly_rate",
        ):
            setattr(clone, name, getattr(self, name)[indices])
        clone._refresh_derived()
        return clone
