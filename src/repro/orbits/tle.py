"""Two-Line Element (TLE) parsing and formatting.

CosmicBeats (the paper's simulator) describes orbits with TLEs; this module
gives the reproduction the same interchange format.  Synthetic constellations
built by :mod:`repro.constellation` can be exported to TLE text and reloaded,
and external TLE catalogs can be imported when available.

The implementation follows the NORAD fixed-column format, including the
modulo-10 checksum and the packed exponent notation used for B* and the
second derivative of mean motion.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.constants import DAY_S, semi_major_axis_from_period_s
from repro.orbits.elements import OrbitalElements

_LINE_LENGTH = 69


class TLEError(ValueError):
    """Raised when TLE text cannot be parsed or fails validation."""


def tle_checksum(line: str) -> int:
    """Compute the NORAD modulo-10 checksum of a TLE line (without its last digit).

    Digits count as their value, '-' counts as 1, everything else as 0.
    """
    total = 0
    for char in line[:68]:
        if char.isdigit():
            total += int(char)
        elif char == "-":
            total += 1
    return total % 10


def _format_exponent_field(value: float) -> str:
    """Format a float in the TLE packed-exponent notation (e.g. ' 12345-4')."""
    if value == 0.0:
        return " 00000+0"
    sign = "-" if value < 0.0 else " "
    magnitude = abs(value)
    exponent = int(math.floor(math.log10(magnitude))) + 1
    mantissa = magnitude / (10.0**exponent)
    mantissa_digits = int(round(mantissa * 1e5))
    if mantissa_digits >= 100000:  # rounding spilled over, e.g. 0.999999
        mantissa_digits = 10000
        exponent += 1
    exp_sign = "-" if exponent < 0 else "+"
    return f"{sign}{mantissa_digits:05d}{exp_sign}{abs(exponent)}"


def _parse_exponent_field(field: str) -> float:
    """Parse the TLE packed-exponent notation back into a float."""
    field = field.strip()
    if not field:
        return 0.0
    match = re.fullmatch(r"([+-]?)(\d{1,5})([+-]\d)", field)
    if match is None:
        raise TLEError(f"malformed exponent field: {field!r}")
    sign = -1.0 if match.group(1) == "-" else 1.0
    mantissa = int(match.group(2)) / 10.0 ** len(match.group(2))
    exponent = int(match.group(3))
    return sign * mantissa * 10.0**exponent


@dataclass(frozen=True)
class TLE:
    """A parsed Two-Line Element set.

    Angles in degrees and mean motion in revolutions/day, mirroring the wire
    format; use :meth:`to_elements` for the library's radian/SI form.
    """

    name: str
    satellite_number: int
    classification: str
    international_designator: str
    epoch_year: int
    epoch_day: float
    mean_motion_dot: float
    mean_motion_ddot: float
    bstar: float
    inclination_deg: float
    raan_deg: float
    eccentricity: float
    arg_perigee_deg: float
    mean_anomaly_deg: float
    mean_motion_rev_day: float
    revolution_number: int = 0
    element_set_number: int = 0

    @classmethod
    def parse(cls, line1: str, line2: str, name: str = "") -> "TLE":
        """Parse a TLE from its two 69-column lines.

        Raises:
            TLEError: On malformed lines or checksum failure.
        """
        line1 = line1.rstrip("\n")
        line2 = line2.rstrip("\n")
        for index, line in ((1, line1), (2, line2)):
            if len(line) < _LINE_LENGTH:
                raise TLEError(f"line {index} too short ({len(line)} chars)")
            if line[0] != str(index):
                raise TLEError(f"line {index} must start with '{index}'")
            expected = tle_checksum(line)
            actual = line[68]
            if not actual.isdigit() or int(actual) != expected:
                raise TLEError(
                    f"line {index} checksum mismatch: expected {expected}, got {actual!r}"
                )
        if line1[2:7] != line2[2:7]:
            raise TLEError("satellite numbers differ between lines")

        epoch_year_two_digit = int(line1[18:20])
        epoch_year = 2000 + epoch_year_two_digit if epoch_year_two_digit < 57 else 1900 + epoch_year_two_digit
        return cls(
            name=name.strip(),
            satellite_number=int(line1[2:7]),
            classification=line1[7],
            international_designator=line1[9:17].strip(),
            epoch_year=epoch_year,
            epoch_day=float(line1[20:32]),
            mean_motion_dot=float(line1[33:43]),
            mean_motion_ddot=_parse_exponent_field(line1[44:52]),
            bstar=_parse_exponent_field(line1[53:61]),
            inclination_deg=float(line2[8:16]),
            raan_deg=float(line2[17:25]),
            eccentricity=float("0." + line2[26:33].strip()),
            arg_perigee_deg=float(line2[34:42]),
            mean_anomaly_deg=float(line2[43:51]),
            mean_motion_rev_day=float(line2[52:63]),
            revolution_number=int(line2[63:68]),
            element_set_number=int(line1[64:68]),
        )

    def format(self) -> Tuple[str, str]:
        """Render the TLE back into its two fixed-column lines (with checksums)."""
        epoch_year_two_digit = self.epoch_year % 100
        # The first-derivative field is 10 columns: sign, decimal point, and
        # eight digits (e.g. "-.00002182").
        dot_sign = "-" if self.mean_motion_dot < 0.0 else " "
        mean_motion_dot = f"{dot_sign}.{round(abs(self.mean_motion_dot) * 1e8):08d}"
        line1_body = (
            f"1 {self.satellite_number:05d}{self.classification} "
            f"{self.international_designator:<8s} "
            f"{epoch_year_two_digit:02d}{self.epoch_day:012.8f} "
            f"{mean_motion_dot:>10s} "
            f"{_format_exponent_field(self.mean_motion_ddot)} "
            f"{_format_exponent_field(self.bstar)} 0 "
            f"{self.element_set_number:4d}"
        )
        ecc_digits = f"{self.eccentricity:.7f}"[2:9]
        line2_body = (
            f"2 {self.satellite_number:05d} "
            f"{self.inclination_deg:8.4f} "
            f"{self.raan_deg:8.4f} "
            f"{ecc_digits} "
            f"{self.arg_perigee_deg:8.4f} "
            f"{self.mean_anomaly_deg:8.4f} "
            f"{self.mean_motion_rev_day:11.8f}"
            f"{self.revolution_number:5d}"
        )
        line1 = line1_body + str(tle_checksum(line1_body))
        line2 = line2_body + str(tle_checksum(line2_body))
        return line1, line2

    def to_elements(self, epoch_s: float = 0.0) -> OrbitalElements:
        """Convert to :class:`OrbitalElements` anchored at ``epoch_s`` sim time."""
        period_s = DAY_S / self.mean_motion_rev_day
        return OrbitalElements(
            semi_major_axis_m=semi_major_axis_from_period_s(period_s),
            eccentricity=self.eccentricity,
            inclination_rad=math.radians(self.inclination_deg),
            raan_rad=math.radians(self.raan_deg % 360.0),
            arg_perigee_rad=math.radians(self.arg_perigee_deg % 360.0),
            mean_anomaly_rad=math.radians(self.mean_anomaly_deg % 360.0),
            epoch_s=epoch_s,
        )

    @classmethod
    def from_elements(
        cls,
        elements: OrbitalElements,
        *,
        name: str = "SAT",
        satellite_number: int = 1,
        epoch_year: int = 2024,
        epoch_day: float = 1.0,
    ) -> "TLE":
        """Build a TLE from orbital elements (two-body mean motion, zero drag)."""
        return cls(
            name=name,
            satellite_number=satellite_number,
            classification="U",
            international_designator="24001A",
            epoch_year=epoch_year,
            epoch_day=epoch_day,
            mean_motion_dot=0.0,
            mean_motion_ddot=0.0,
            bstar=0.0,
            inclination_deg=elements.inclination_deg,
            raan_deg=elements.raan_deg % 360.0,
            eccentricity=elements.eccentricity,
            arg_perigee_deg=math.degrees(elements.arg_perigee_rad) % 360.0,
            mean_anomaly_deg=elements.mean_anomaly_deg % 360.0,
            mean_motion_rev_day=DAY_S / elements.period_s,
        )


def parse_tle_file(text: str) -> List[TLE]:
    """Parse a multi-TLE text blob (3-line format with names, or bare 2-line)."""
    lines = [line.rstrip("\n") for line in text.splitlines() if line.strip()]
    result: List[TLE] = []
    index = 0
    while index < len(lines):
        if lines[index].startswith("1 "):
            if index + 1 >= len(lines):
                raise TLEError("dangling line 1 at end of TLE file")
            result.append(TLE.parse(lines[index], lines[index + 1]))
            index += 2
        else:
            if index + 2 >= len(lines):
                raise TLEError("dangling name line at end of TLE file")
            result.append(TLE.parse(lines[index + 1], lines[index + 2], name=lines[index]))
            index += 3
    return result


def format_tle_file(tles: Iterable[TLE]) -> str:
    """Render TLEs as a 3-line-format text blob."""

    def emit() -> Iterator[str]:
        for tle in tles:
            line1, line2 = tle.format()
            yield tle.name or "UNNAMED"
            yield line1
            yield line2

    return "\n".join(emit()) + "\n"
