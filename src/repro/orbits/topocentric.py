"""Topocentric geometry: look angles from a ground site to a satellite.

Two paths are provided:

* The **reference path** (:func:`look_angles`) transforms ECEF vectors into
  the local South-East-Zenith (SEZ) frame and returns azimuth / elevation /
  slant range.  It is exact and used in tests, link budgets, and anywhere a
  pointing answer matters.
* The **fast path** used by the coverage engine avoids the transform
  entirely: for a satellite at orbital radius ``r`` and a site on a sphere of
  radius ``R``, elevation >= mask is equivalent to the Earth-central angle
  between the two position vectors being <= a threshold
  (:func:`coverage_central_angle_rad`).  Tests assert that both paths agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.constants import EARTH_MEAN_RADIUS_M

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class LookAngles:
    """Azimuth/elevation/range from a site to a satellite."""

    azimuth_deg: float
    elevation_deg: float
    slant_range_m: float


def _sez_rotation(latitude_deg: float, longitude_deg: float) -> np.ndarray:
    """Rotation matrix taking ECEF offsets into the site's SEZ frame."""
    lat = math.radians(latitude_deg)
    lon = math.radians(longitude_deg)
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_lon, cos_lon = math.sin(lon), math.cos(lon)
    return np.array(
        [
            [sin_lat * cos_lon, sin_lat * sin_lon, -cos_lat],
            [-sin_lon, cos_lon, 0.0],
            [cos_lat * cos_lon, cos_lat * sin_lon, sin_lat],
        ]
    )


def look_angles(
    site_ecef: np.ndarray,
    satellite_ecef: np.ndarray,
    site_latitude_deg: float,
    site_longitude_deg: float,
) -> LookAngles:
    """Compute az/el/range from a ground site to a satellite (both ECEF, meters).

    Azimuth is measured clockwise from true north; elevation from the local
    horizontal plane.
    """
    offset = np.asarray(satellite_ecef, dtype=np.float64) - np.asarray(
        site_ecef, dtype=np.float64
    )
    sez = _sez_rotation(site_latitude_deg, site_longitude_deg) @ offset
    south, east, zenith = sez
    slant_range = float(np.linalg.norm(sez))
    if slant_range == 0.0:
        raise ValueError("satellite and site positions coincide")
    elevation = math.degrees(math.asin(zenith / slant_range))
    azimuth = math.degrees(math.atan2(east, -south)) % 360.0
    return LookAngles(azimuth, elevation, slant_range)


def elevation_deg(
    site_ecef: np.ndarray,
    satellite_ecef: np.ndarray,
) -> ArrayLike:
    """Elevation angle(s) of satellite(s) above a site's local horizon.

    A vectorized elevation-only computation that works for arrays of
    satellite positions: shape (..., 3) against a single site (3,).  The
    local vertical is approximated by the geocentric site direction, which is
    exact on a spherical Earth and within ~0.2 deg on the ellipsoid —
    consistent with the spherical coverage geometry the fast path uses.
    """
    site = np.asarray(site_ecef, dtype=np.float64)
    sat = np.asarray(satellite_ecef, dtype=np.float64)
    offset = sat - site
    offset_norm = np.linalg.norm(offset, axis=-1)
    site_unit = site / np.linalg.norm(site)
    sin_el = np.einsum("...i,i->...", offset, site_unit) / offset_norm
    return np.degrees(np.arcsin(np.clip(sin_el, -1.0, 1.0)))


def slant_range_m(
    orbital_radius_m: float,
    elevation_deg_value: float,
    site_radius_m: float = EARTH_MEAN_RADIUS_M,
) -> float:
    """Slant range to a satellite at a given elevation (spherical Earth).

    From the law of cosines on the Earth-center / site / satellite triangle.
    """
    el = math.radians(elevation_deg_value)
    r_site = site_radius_m
    r_sat = orbital_radius_m
    # Range satisfies: r_sat^2 = r_site^2 + rho^2 + 2 r_site rho sin(el).
    sin_el = math.sin(el)
    return -r_site * sin_el + math.sqrt(
        (r_site * sin_el) ** 2 + r_sat**2 - r_site**2
    )


def coverage_central_angle_rad(
    orbital_radius_m: float,
    min_elevation_deg: float,
    site_radius_m: float = EARTH_MEAN_RADIUS_M,
) -> float:
    """Earth-central half-angle of a satellite's coverage footprint.

    A site sees the satellite above ``min_elevation_deg`` iff the central
    angle between the site and the subsatellite point is below this value
    (spherical Earth).  Standard result (Wertz, *SMAD*):

        psi = acos( (R / r) * cos(el) ) - el
    """
    if orbital_radius_m <= site_radius_m:
        raise ValueError("orbital radius must exceed the site radius")
    el = math.radians(min_elevation_deg)
    return math.acos(site_radius_m / orbital_radius_m * math.cos(el)) - el


def footprint_area_fraction(
    orbital_radius_m: float,
    min_elevation_deg: float,
    site_radius_m: float = EARTH_MEAN_RADIUS_M,
) -> float:
    """Fraction of the Earth sphere inside one satellite's footprint.

    Spherical-cap area ratio: (1 - cos(psi)) / 2.
    """
    psi = coverage_central_angle_rad(orbital_radius_m, min_elevation_deg, site_radius_m)
    return (1.0 - math.cos(psi)) / 2.0


def central_angle_between(
    unit_a: np.ndarray, unit_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (cos_angle, angle_rad) between unit vectors, broadcast-safe."""
    cos_angle = np.clip(np.einsum("...i,...i->...", unit_a, unit_b), -1.0, 1.0)
    return cos_angle, np.arccos(cos_angle)
