"""Orbital mechanics substrate.

This package implements everything the simulator needs to know about orbits:

* :mod:`repro.orbits.elements` — classical orbital elements and anomaly
  conversions.
* :mod:`repro.orbits.kepler` — Kepler-equation solvers (scalar and
  vectorized).
* :mod:`repro.orbits.frames` — time and coordinate frames (GMST, ECI, ECEF,
  geodetic).
* :mod:`repro.orbits.propagator` — two-body + J2-secular propagation, both a
  readable scalar reference and a numpy batch implementation used by the
  coverage engine.
* :mod:`repro.orbits.topocentric` — azimuth / elevation / range from a ground
  site.
* :mod:`repro.orbits.tle` — Two-Line Element parsing and formatting.
* :mod:`repro.orbits.groundtrack` — ground tracks and revisit analysis.
"""

from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import (
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_rad,
    subsatellite_point,
)
from repro.orbits.kepler import solve_kepler, solve_kepler_batch
from repro.orbits.propagator import BatchPropagator, J2Propagator
from repro.orbits.tle import TLE, tle_checksum
from repro.orbits.topocentric import elevation_deg, look_angles

__all__ = [
    "OrbitalElements",
    "J2Propagator",
    "BatchPropagator",
    "TLE",
    "tle_checksum",
    "solve_kepler",
    "solve_kepler_batch",
    "gmst_rad",
    "eci_to_ecef",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "subsatellite_point",
    "look_angles",
    "elevation_deg",
]
