"""repro.runner — the unified Scenario/Runner experiment layer.

Every figure experiment is a :class:`Scenario`: a sweep axis, a pure
per-run kernel, and a reduction.  One :class:`MonteCarloRunner` executes
them all — serially or over a process pool (``--parallel N``) — with
order-independent per-run seeding so results never depend on run count,
execution order, or worker count.
"""

from repro.runner.monte_carlo import (
    POOL_SEED,
    MonteCarloRunner,
    run_scenario,
)
from repro.runner.pool import PersistentPool
from repro.runner.scenario import (
    RunContext,
    Scenario,
    run_rng,
    run_seed_sequence,
)
from repro.runner.shared import (
    SharedVisibilityHandle,
    attach_packed_visibility,
    share_packed_visibility,
    unlink_shared_visibility,
)

__all__ = [
    "MonteCarloRunner",
    "POOL_SEED",
    "PersistentPool",
    "RunContext",
    "Scenario",
    "SharedVisibilityHandle",
    "attach_packed_visibility",
    "run_rng",
    "run_scenario",
    "run_seed_sequence",
    "share_packed_visibility",
    "unlink_shared_visibility",
]
