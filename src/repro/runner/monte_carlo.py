"""The Monte-Carlo runner: one driver for every figure experiment.

:class:`MonteCarloRunner` executes a :class:`~repro.runner.scenario.
Scenario` — sweep axis × repetitions — either in-process or over an opt-in
process pool (``ExperimentConfig.parallel`` / the CLI's ``--parallel N``).

Determinism contract
--------------------

Results are a pure function of ``(scenario, config)``:

* per-run RNGs come from order-independent seed derivation
  (:func:`repro.runner.scenario.run_rng`), so run *i* draws the same sample
  whether 5 or 500 runs were requested;
* samples are reduced in (point, run) order regardless of completion
  order, so parallel floating-point aggregation matches serial bit for bit.

``--parallel N`` therefore changes wall-clock only: stdout tables, result
objects, and figure rows are byte-identical for every N.

Parallel execution
------------------

Workers are plain ``multiprocessing`` pool processes.  The engine's world
state — the ~100 MB packed visibility tensor on the grid engine, the CSR
contact-window arrays on the intervals engine — is exported once through
:mod:`multiprocessing.shared_memory` (:mod:`repro.runner.shared`) and
installed into each worker's
:class:`~repro.experiments.common.ExperimentContext` at pool startup, so
spawning N workers costs N page-table mappings, not N artifact pickles
(on platforms without shared memory the intervals engine degrades to a
pickle copy; results are identical either way).

The pool itself is **persistent**: worker initialization installs world
state only (config, shared tensor/windows, engine, kernel backend), and
each task ships its scenario alongside the run indices, so one warm pool
serves every scenario of a CLI invocation back to back
(:class:`~repro.runner.pool.PersistentPool`).  The pool is owned by the
:class:`~repro.experiments.common.ExperimentContext` and torn down on
``context.clear()``, on worker loss, or when a run needs incompatible
worker state (different config/engine/backend/world or live channel).

Each repetition runs inside a worker-local observability capture: its span
records, metric deltas, and simulation-timeline events travel back with the
sample and are folded into the parent's collectors
(``Tracer.merge_snapshot`` / ``MetricsRegistry.merge`` /
``timeline.extend``), so a parallel run still produces ONE run report with
every per-run wall time in the ``trace.span_seconds.runner.run.<name>``
histogram the bench schema records.

Live telemetry (the bus)
------------------------

With the telemetry bus in live mode (the CLI's ``--live-status``; see
:mod:`repro.obs.bus`), the parallel path streams instead of batching:
workers publish ``run.started`` / ``run.finished`` frames — the finish
frame carrying the sample *and* the observability capture — plus periodic
heartbeats from a daemon thread, and the parent drains the bus while the
pool runs.  Telemetry merges **incrementally, in (point, run) order**
through a reorder buffer, so the merged spans/metrics/timeline are
bit-identical to the batch merge (the deterministic projection is
regression-enforced in ``tests/runner/test_live_bus.py``).  Missed
heartbeats mark a worker dead: its lost repetitions are re-executed
in-process (results are pure functions of the task id, so the rerun is
exact), the failure lands in the run report's ``bus`` section, and every
already-merged frame is kept.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.common import (
    ENGINE_GRID,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
    default_context,
    visibility_cache_key,
)
from repro.obs import bus as obs_bus
from repro.obs import get_logger, metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace
from repro.obs.timeline import TimelineEvent
from repro.obs.trace import span
from repro.runner.pool import PersistentPool
from repro.runner.scenario import RunContext, Scenario, run_rng
from repro.runner.shared import (
    PickledIntervalsFallback,
    SharedIntervalsHandle,
    SharedVisibilityHandle,
    attach_contact_intervals,
    attach_packed_visibility,
    ensure_shared_intervals,
    ensure_shared_visibility,
)
from repro.sim import backends

_LOG = get_logger(__name__)

_RUNS_TOTAL = metrics.counter("runner.runs")
_WORKERS = metrics.gauge("runner.workers")
_RERUN_TASKS = metrics.counter("runner.rerun_tasks")

#: The synthetic pool every scenario samples from (seed of the Starlink
#: shells); part of the visibility cache key.
POOL_SEED = 0

#: One parallel task: (point_index, run_index).
_Task = Tuple[int, int]

#: What actually crosses the pipe per task: the scenario and sweep point
#: ride along so a persistent pool's workers need no per-scenario state.
_ShippedTask = Tuple[Scenario, Any, int, int]

#: What a worker sends back per repetition: indices, the kernel's sample,
#: its wall time, and the observability capture (trace snapshot, metrics
#: snapshot, timeline event dicts).
_Payload = Tuple[int, int, Any, float, Dict, Dict, List[Dict]]

#: Seconds the parent waits per bus poll while the live pool runs.
_LIVE_POLL_S = 0.2

#: Seconds of post-completion grace for frame-queue flushing before the
#: parent declares frames lost (worker feeder threads flush in ms).
_LIVE_FLUSH_GRACE_S = 10.0


class MonteCarloRunner:
    """Executes scenarios: sweep × repetitions, serial or process-parallel.

    Args:
        config: The experiment configuration (``config.parallel`` sets the
            default worker count).
        context: Artifact cache to run against (default: the process-default
            context, so CLI/benchmark invocations share one tensor).
        parallel: Overrides ``config.parallel`` when given.
        bus: Telemetry bus to publish progress frames on (default: the
            process-default bus).  With ``bus.live`` set, parallel runs
            stream worker telemetry through it (see the module docstring).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        context: Optional[ExperimentContext] = None,
        parallel: Optional[int] = None,
        bus: Optional[obs_bus.TelemetryBus] = None,
    ) -> None:
        workers = config.parallel if parallel is None else parallel
        if workers < 1:
            raise ValueError(f"parallel must be >= 1, got {workers}")
        if config.runs < 1:
            raise ValueError(f"runs must be >= 1, got {config.runs}")
        self.config = config
        self.context = context if context is not None else default_context()
        self.parallel = workers
        self.bus = bus if bus is not None else obs_bus.default_bus()

    # -- public API ---------------------------------------------------------

    def run(self, scenario: Scenario) -> Any:
        """Execute a scenario end to end; returns ``scenario.finalize(...)``."""
        points, samples = self.collect(scenario)
        with span(f"reduce.{scenario.name}"):
            reduced = [
                scenario.reduce(point, index, samples[index], self.config)
                for index, point in enumerate(points)
            ]
            return scenario.finalize(reduced, self.config)

    def collect(self, scenario: Scenario) -> Tuple[List[Any], List[List[Any]]]:
        """Run every repetition; returns (points, samples per point).

        Samples are ordered by run index within each point — the raw
        material :meth:`run` reduces, exposed for tests that pin the
        order-independence of per-run seeds.
        """
        points = list(scenario.sweep(self.config, self.context))
        scenario.prepare(self.context, self.config)
        tasks: List[_Task] = [
            (point_index, run_index)
            for point_index, point in enumerate(points)
            for run_index in range(scenario.runs_for(point, self.config))
        ]
        workers = min(self.parallel, len(tasks))
        _WORKERS.set(workers)
        if self.bus.active:
            self.bus.publish(
                obs_bus.SCENARIO_STARTED,
                scenario=scenario.name,
                tasks=len(tasks),
                points=len(points),
                workers=workers,
            )
        with span(f"analysis.{scenario.name}"):
            if workers <= 1:
                by_task = self._collect_serial(scenario, points, tasks)
            elif self.bus.live:
                by_task = self._collect_parallel_live(
                    scenario, points, tasks, workers
                )
            else:
                by_task = self._collect_parallel(scenario, points, tasks, workers)
        if self.bus.active:
            self.bus.publish(obs_bus.SCENARIO_FINISHED, scenario=scenario.name)
        samples: List[List[Any]] = [[] for _ in points]
        for point_index, run_index in tasks:
            samples[point_index].append(by_task[(point_index, run_index)])
        return points, samples

    # -- serial path ---------------------------------------------------------

    def _collect_serial(
        self, scenario: Scenario, points: List[Any], tasks: List[_Task]
    ) -> Dict[_Task, Any]:
        by_task: Dict[_Task, Any] = {}
        for point_index, run_index in tasks:
            by_task[(point_index, run_index)] = self._run_in_process(
                scenario, points, point_index, run_index
            )
        return by_task

    def _run_in_process(
        self, scenario: Scenario, points: List[Any],
        point_index: int, run_index: int,
    ) -> Any:
        """One repetition on the parent process, with bus progress frames.

        Shared by the serial path and the dead-worker rerun fallback —
        telemetry is recorded directly into the parent collectors either
        way.
        """
        narrate = self.bus.active
        if narrate:
            self.bus.publish(
                obs_bus.RUN_STARTED,
                point_index=point_index, run_index=run_index,
            )
        ctx = RunContext(
            config=self.config,
            context=self.context,
            point=points[point_index],
            point_index=point_index,
            run_index=run_index,
            rng=run_rng(self.config.seed, scenario.salt, point_index, run_index),
            pool_seed=POOL_SEED,
        )
        start = time.perf_counter()
        with span(f"runner.run.{scenario.name}"):
            sample = scenario.run_one(ctx, run_index)
        _RUNS_TOTAL.inc()
        if narrate:
            self.bus.publish(
                obs_bus.RUN_FINISHED,
                point_index=point_index, run_index=run_index,
                wall_s=time.perf_counter() - start,
            )
        return sample

    # -- parallel path (batch merge) ------------------------------------------

    def _collect_parallel(
        self,
        scenario: Scenario,
        points: List[Any],
        tasks: List[_Task],
        workers: int,
    ) -> Dict[_Task, Any]:
        pool = self._acquire_pool(scenario, workers, live=False)
        chunksize = max(1, len(tasks) // (workers * 8))
        _LOG.info(
            "parallel %s: %d tasks on %d workers (chunksize %d)",
            scenario.name, len(tasks), workers, chunksize,
        )
        shipped = self._ship(scenario, points, tasks)
        try:
            payloads = pool.map(_run_task, shipped, chunksize=chunksize)
        except Exception:
            # A worker exception leaves the pool's queue state suspect;
            # don't let a later scenario inherit it.
            pool.dispose(terminate=True)
            raise
        return self._merge_payloads(payloads)

    @staticmethod
    def _ship(
        scenario: Scenario, points: List[Any], tasks: List[_Task]
    ) -> List[_ShippedTask]:
        """Attach the scenario and sweep point to each (point, run) task."""
        return [
            (scenario, points[point_index], point_index, run_index)
            for point_index, run_index in tasks
        ]

    def _pool_key(self, scenario: Scenario, live: bool) -> Tuple:
        """Everything that shapes worker-side state, as a reuse key.

        Two runs may share a warm pool only when their workers would have
        been initialized identically: same engine, same kernel backend,
        same config, same world-state cache entry (``None`` for scenarios
        that never read the pool tensor), and — in live mode — the same
        bus.  ``context.clear()`` disposes the pool, so a matching cache
        key implies the workers' attached world state is still current.
        """
        engine = getattr(self.context, "engine", ENGINE_GRID)
        world = (
            (engine, visibility_cache_key(self.config, POOL_SEED))
            if scenario.uses_pool
            else None
        )
        return (
            engine,
            backends.default_backend_name(),
            self.config,
            POOL_SEED,
            world,
            live,
            id(self.bus) if live else None,
        )

    def _acquire_pool(
        self, scenario: Scenario, workers: int, live: bool
    ) -> PersistentPool:
        """The context's warm pool if compatible, else a fresh one.

        A fresh pool is adopted by the context (displacing — and disposing
        — any incompatible predecessor), so its workers stay warm for the
        next scenario of this invocation and die with ``context.clear()``.
        """
        key = self._pool_key(scenario, live)
        existing = getattr(self.context, "worker_pool", None)
        if (
            existing is not None
            and hasattr(existing, "compatible")
            and existing.compatible(key, workers)
        ):
            _LOG.info(
                "reusing warm pool (%d workers) for %s",
                existing.workers, scenario.name,
            )
            return existing
        handle, segment = self._shared_handle(scenario)
        mp_context = _start_context()
        channel = self.bus.open_channel(mp_context) if live else None
        initargs = (
            self.config, handle, POOL_SEED,
            getattr(self.context, "engine", ENGINE_GRID),
            backends.default_backend_name(),
        )
        if live:
            initargs = initargs + (channel, self.bus.heartbeat_s)
        pool = PersistentPool(
            key=key,
            workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=initargs,
            segment=segment,
            channel=channel,
        )
        adopt = getattr(self.context, "adopt_worker_pool", None)
        if adopt is not None:
            adopt(pool)
        return pool

    def _shared_handle(self, scenario: Scenario):
        """The shared-memory world-state handle for pool scenarios (or None).

        Engine-dependent: the grid engine exports the packed visibility
        tensor, the intervals engine the CSR contact-window arrays (with a
        pickle-copy fallback when shared memory is unavailable).
        """
        if not scenario.uses_pool:
            return None, None
        if getattr(self.context, "engine", ENGINE_GRID) == ENGINE_INTERVALS:
            return ensure_shared_intervals(self.context, self.config, POOL_SEED)
        # Cache-aware: on a miss the tensor is chunk-streamed straight
        # into a context-owned segment (no copy); ``segment`` is only
        # returned — and unlinked by the caller — for the copy fallback.
        return ensure_shared_visibility(self.context, self.config, POOL_SEED)

    def _merge_payloads(self, payloads: Sequence[_Payload]) -> Dict[_Task, Any]:
        """Fold worker observability into the parent; return samples by task.

        Payloads merge in (point, run) order — not completion order — so
        the parent's timeline and span record streams are as deterministic
        as the serial path's.
        """
        by_task: Dict[_Task, Any] = {}
        for payload in sorted(payloads, key=lambda item: (item[0], item[1])):
            point_index, run_index, sample, wall_s, trace_snap, metric_snap, events = (
                payload
            )
            by_task[(point_index, run_index)] = sample
            _merge_capture(wall_s, trace_snap, metric_snap, events)
        return by_task

    # -- parallel path (live streaming merge) -----------------------------------

    def _collect_parallel_live(
        self,
        scenario: Scenario,
        points: List[Any],
        tasks: List[_Task],
        workers: int,
    ) -> Dict[_Task, Any]:
        """Stream worker frames over the bus; merge telemetry incrementally.

        Samples and observability captures arrive inside ``run.finished``
        frames; the pool's own result channel only carries acks (and
        surfaces worker exceptions).  A reorder buffer
        (:class:`_IncrementalMerger`) applies captures strictly in (point,
        run) order, so the merged structures match the batch path's exactly.
        Tasks are submitted with ``chunksize=1`` so a dead worker loses at
        most the single repetition it was executing.
        """
        bus = self.bus
        pool = self._acquire_pool(scenario, workers, live=True)
        channel = pool.channel
        _LOG.info(
            "parallel-live %s: %d tasks on %d workers (heartbeat %.2fs, "
            "stall timeout %.1fs)",
            scenario.name, len(tasks), workers, bus.heartbeat_s,
            bus.stall_timeout_s,
        )
        by_task: Dict[_Task, Any] = {}
        merger = _IncrementalMerger(tasks)
        pending: Set[_Task] = set(tasks)
        in_flight: Dict[str, Set[_Task]] = {}
        idle: Dict[str, bool] = {}
        lost: List[_Task] = []
        orphan_since: Optional[float] = None
        try:
            result = pool.map_async(
                _run_task, self._ship(scenario, points, tasks), chunksize=1
            )
            flush_deadline: Optional[float] = None
            last_frame = time.monotonic()
            while pending:
                frames = bus.drain(channel, timeout_s=_LIVE_POLL_S)
                for frame in frames:
                    self._observe_live_frame(
                        frame, pending, in_flight, idle, by_task, merger
                    )
                if frames:
                    last_frame = time.monotonic()
                if bus.status is not None:
                    bus.status.render()
                if not pending:
                    break
                for worker in bus.stale_workers():
                    worker_lost = tuple(
                        sorted(in_flight.get(worker, set()) & pending)
                    )
                    bus.record_worker_failure(
                        worker,
                        f"no heartbeat for {bus.stall_timeout_s:.1f}s",
                        worker_lost,
                    )
                    _LOG.warning(
                        "worker %s declared dead; %d task(s) will re-run "
                        "in-process", worker, len(worker_lost),
                    )
                    for task in worker_lost:
                        pending.discard(task)
                        lost.append(task)
                # Orphan fallback: a SIGKILLed worker can die before its
                # ``run.started`` frame flushes, leaving its task pending
                # with no owner — stale detection then recovers nothing.
                # A pending task claimed by no live worker *while some live
                # worker sits idle* means the pool's task queue is empty
                # and that result will never come; after a stall-timeout of
                # that state, re-run the unclaimed tasks in-process.
                failed = {entry["worker"] for entry in bus.failed_workers}
                owned: Set[_Task] = set()
                idle_live = False
                for worker in bus.workers_seen:
                    if worker in failed:
                        continue
                    owned |= in_flight.get(worker, set())
                    if idle.get(worker):
                        idle_live = True
                orphans = pending - owned
                if orphans and idle_live:
                    now = time.monotonic()
                    if orphan_since is None:
                        orphan_since = now
                    elif now - orphan_since > bus.stall_timeout_s:
                        self._declare_lost(
                            bus, orphans, pending, lost,
                            "task(s) unclaimed by any live worker",
                        )
                        orphan_since = None
                else:
                    orphan_since = None
                # Last-resort catch-all: a worker that dies while holding
                # the frame queue's write lock silences every surviving
                # publisher at once — no heartbeats, no idle signal, no
                # per-worker recovery.  Total bus silence past the stall
                # timeout means nothing more will ever arrive.
                if pending and time.monotonic() - last_frame > bus.stall_timeout_s:
                    self._declare_lost(
                        bus, set(pending), pending, lost,
                        f"bus silent for {bus.stall_timeout_s:.1f}s",
                    )
                if result.ready() and pending:
                    # The pool finished (or broke): surface worker
                    # exceptions, then allow a grace window for queued
                    # frames to flush before declaring them lost.
                    result.get()
                    now = time.monotonic()
                    if flush_deadline is None:
                        flush_deadline = now + _LIVE_FLUSH_GRACE_S
                    elif now > flush_deadline:
                        _LOG.warning(
                            "%d task frame(s) never arrived after pool "
                            "completion; re-running in-process",
                            len(pending),
                        )
                        lost.extend(sorted(pending))
                        pending.clear()
            # Final sweep for stragglers queued behind the last poll.
            for frame in bus.drain(channel, timeout_s=0.0):
                self._observe_live_frame(
                    frame, pending, in_flight, idle, by_task, merger
                )
        except Exception:
            # A worker exception (surfaced by result.get()) taints the
            # pool's queue state; don't let a later scenario inherit it.
            pool.dispose(terminate=True)
            raise
        if lost:
            # Worker loss means the warm pool is down workers and its
            # frame queue may hold a dead writer's lock: kill it.  The
            # next parallel run respawns a fresh one.
            pool.dispose(terminate=True)
        for task in sorted(lost):
            # Exact re-execution: the sample is a pure function of the task
            # id.  The merger holds later tasks' captures back until this
            # slot resolves, so telemetry stays in (point, run) order.
            _RERUN_TASKS.inc()
            point_index, run_index = task
            by_task[task] = self._run_in_process(
                scenario, points, point_index, run_index
            )
            merger.resolve_external(task)
        merger.require_complete()
        return by_task

    def _declare_lost(
        self,
        bus: obs_bus.TelemetryBus,
        tasks: Set[_Task],
        pending: Set[_Task],
        lost: List[_Task],
        reason: str,
    ) -> None:
        """Give up on ``tasks``: record an unattributed worker failure (their
        owner's identity died with its unflushed frames) and queue the
        in-process rerun."""
        ordered = tuple(sorted(tasks))
        bus.record_worker_failure("unknown", reason, ordered)
        _LOG.warning(
            "%s; %d task(s) will re-run in-process", reason, len(ordered)
        )
        for task in ordered:
            pending.discard(task)
            lost.append(task)

    def _observe_live_frame(
        self,
        frame: obs_bus.Frame,
        pending: Set[_Task],
        in_flight: Dict[str, Set[_Task]],
        idle: Dict[str, bool],
        by_task: Dict[_Task, Any],
        merger: "_IncrementalMerger",
    ) -> None:
        if frame.kind == obs_bus.RUN_STARTED:
            task = (frame.payload["point_index"], frame.payload["run_index"])
            in_flight.setdefault(frame.worker, set()).add(task)
            idle[frame.worker] = False
        elif frame.kind == obs_bus.RUN_FINISHED:
            task = (frame.payload["point_index"], frame.payload["run_index"])
            in_flight.get(frame.worker, set()).discard(task)
            idle[frame.worker] = frame.worker != obs_bus.MAIN_WORKER
            if task in pending:
                pending.discard(task)
                by_task[task] = frame.payload["sample"]
                merger.add(task, frame.payload)
        elif frame.kind == obs_bus.HEARTBEAT:
            # Heartbeats carry the worker's current task: a second source
            # of ownership attribution (run.started frames can die in a
            # killed worker's queue buffer) and the idle signal the orphan
            # fallback needs.
            task = frame.payload.get("task")
            if task is None:
                idle[frame.worker] = True
            else:
                idle[frame.worker] = False
                in_flight.setdefault(frame.worker, set()).add(tuple(task))

    def _merge_payloads_compat(self, payloads):  # pragma: no cover
        return self._merge_payloads(payloads)


class _IncrementalMerger:
    """Reorder buffer: apply worker captures strictly in (point, run) order.

    Frames arrive in completion order; the batch path merges in sorted task
    order.  Buffering out-of-order captures until their slot is next keeps
    the live path's merged telemetry bit-identical to the batch path's.
    A task handled outside the bus (the dead-worker in-process rerun, whose
    telemetry records directly into the parent collectors at execution
    time) is marked with :meth:`resolve_external` so the queue advances.
    """

    def __init__(self, tasks: Sequence[_Task]) -> None:
        self._order: List[_Task] = sorted(tasks)
        self._next = 0
        self._buffered: Dict[_Task, Optional[Dict]] = {}
        self.merged = 0

    def add(self, task: _Task, payload: Dict) -> None:
        self._buffered[task] = payload
        self._flush()

    def resolve_external(self, task: _Task) -> None:
        self._buffered[task] = None
        self._flush()

    def _flush(self) -> None:
        while self._next < len(self._order):
            task = self._order[self._next]
            if task not in self._buffered:
                return
            payload = self._buffered.pop(task)
            if payload is not None:
                _merge_capture(
                    payload["wall_s"], payload["trace"], payload["metrics"],
                    payload["events"],
                )
                self.merged += 1
            self._next += 1

    def require_complete(self) -> None:
        if self._next != len(self._order):  # pragma: no cover - invariant
            raise RuntimeError(
                f"telemetry merge incomplete: {len(self._order) - self._next} "
                "task(s) unresolved"
            )


def _merge_capture(
    wall_s: float, trace_snap: Dict, metric_snap: Dict, events: List[Dict]
) -> None:
    """Fold one repetition's observability capture into the parent.

    Worker span starts are relative to the worker's task-start epoch;
    re-base them so each task's records end "now" on the parent clock
    (durations — the quantity bench-compare reads — are exact either way).
    """
    offset = obs_trace.TRACER.now_s() - wall_s
    obs_trace.TRACER.merge_snapshot(trace_snap, start_offset_s=offset)
    metrics.REGISTRY.merge(metric_snap)
    obs_timeline.extend(TimelineEvent.from_dict(event) for event in events)
    _RUNS_TOTAL.inc()


def run_scenario(
    scenario: Scenario,
    config: ExperimentConfig,
    context: Optional[ExperimentContext] = None,
    parallel: Optional[int] = None,
    bus: Optional[obs_bus.TelemetryBus] = None,
) -> Any:
    """Convenience one-shot: build a runner and execute ``scenario``."""
    return MonteCarloRunner(
        config, context=context, parallel=parallel, bus=bus
    ).run(scenario)


def _start_context():
    """Fork where the platform offers it (cheap, inherits imports); spawn
    otherwise.  Both work: workers receive everything through initargs and
    the shared-memory handle, never through inherited globals."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- worker-side machinery ----------------------------------------------------
#
# Module-level (not closures) so both fork and spawn start methods can
# pickle/resolve them.  One _WorkerState per worker process, built once by
# the pool initializer and reused across tasks.


class _WorkerState:
    __slots__ = (
        "config", "context", "segment", "pool_seed",
        "publisher", "runs_done", "current_task",
    )

    def __init__(self, config, context, segment, pool_seed, publisher=None):
        self.config = config
        self.context = context
        self.segment = segment  # Keeps the shm mapping alive for the tensor.
        self.pool_seed = pool_seed
        self.publisher = publisher  # Live-mode bus publisher (else None).
        self.runs_done = 0
        self.current_task = None

    def heartbeat_payload(self) -> Dict:
        """Read by the heartbeat thread; plain reads are atomic enough."""
        task = self.current_task
        return {
            "runs_done": self.runs_done,
            "task": list(task) if task is not None else None,
        }


_WORKER: Optional[_WorkerState] = None


def _init_worker(
    config: ExperimentConfig,
    handle: Any,
    pool_seed: int,
    engine: str = ENGINE_GRID,
    backend: str = "numpy",
    channel: Optional[obs_bus.BusChannel] = None,
    heartbeat_s: float = obs_bus.DEFAULT_HEARTBEAT_S,
) -> None:
    """Pool initializer: private context, shared world state attached.

    World state **only** — no scenario, no sweep points: those ship with
    each task, so a persistent pool's workers serve any scenario against
    this (config, engine, backend, world) without reinitialization.

    ``handle`` selects what gets installed: a
    :class:`~repro.runner.shared.SharedVisibilityHandle` attaches the
    packed tensor, a :class:`~repro.runner.shared.SharedIntervalsHandle`
    attaches the CSR contact windows (both zero-copy), and a
    :class:`~repro.runner.shared.PickledIntervalsFallback` installs the
    windows it carried by value.  ``backend`` replays the parent's kernel
    backend selection (the env var only covers fork starts).  In live mode
    (``channel`` given) the worker also announces itself on the bus —
    once per worker lifetime, however many scenarios it serves — and
    starts the daemon heartbeat thread.
    """
    global _WORKER
    backends.set_default_backend(backend)
    context = ExperimentContext(engine=engine)
    segment = None
    if isinstance(handle, SharedVisibilityHandle):
        segment, visibility = attach_packed_visibility(handle)
        context.install_visibility(config, visibility, pool_seed=pool_seed)
    elif isinstance(handle, SharedIntervalsHandle):
        segment, contacts = attach_contact_intervals(handle)
        context.install_intervals(config, contacts, pool_seed=pool_seed)
    elif isinstance(handle, PickledIntervalsFallback):
        context.install_intervals(config, handle.contacts, pool_seed=pool_seed)
    publisher = None
    if channel is not None:
        publisher = obs_bus.WorkerPublisher(channel, f"worker-{os.getpid()}")
    _WORKER = _WorkerState(config, context, segment, pool_seed, publisher)
    if publisher is not None:
        publisher.publish(obs_bus.WORKER_ONLINE, pid=os.getpid())
        publisher.start_heartbeats(heartbeat_s, _WORKER.heartbeat_payload)


def _run_task(task: _ShippedTask):
    """Execute one repetition in a worker and capture its observability.

    The task carries its scenario and sweep point (persistent-pool workers
    hold world state only).  The worker's collectors are reset at task
    start and snapshotted at task end, so the payload carries exactly this
    repetition's spans, metric deltas, and timeline events for the parent
    to merge.  In live mode the payload ships inside the ``run.finished``
    bus frame (the pool result is a bare ack); otherwise it returns
    through the pool as before.
    """
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before _init_worker")
    scenario, point, point_index, run_index = task
    state.current_task = (point_index, run_index)
    if state.publisher is not None:
        state.publisher.publish(
            obs_bus.RUN_STARTED, point_index=point_index, run_index=run_index
        )
    obs_trace.TRACER.reset()
    metrics.REGISTRY.reset()
    obs_timeline.TIMELINE.reset()
    ctx = RunContext(
        config=state.config,
        context=state.context,
        point=point,
        point_index=point_index,
        run_index=run_index,
        rng=run_rng(state.config.seed, scenario.salt, point_index, run_index),
        pool_seed=state.pool_seed,
    )
    start = time.perf_counter()
    with span(f"runner.run.{scenario.name}"):
        sample = scenario.run_one(ctx, run_index)
    wall_s = time.perf_counter() - start
    state.runs_done += 1
    state.current_task = None
    if state.publisher is not None:
        state.publisher.publish(
            obs_bus.RUN_FINISHED,
            point_index=point_index,
            run_index=run_index,
            wall_s=wall_s,
            sample=sample,
            trace=obs_trace.TRACER.snapshot(),
            metrics=metrics.REGISTRY.snapshot(),
            events=obs_timeline.TIMELINE.snapshot()["events"],
        )
        return (point_index, run_index)
    return (
        point_index,
        run_index,
        sample,
        wall_s,
        obs_trace.TRACER.snapshot(),
        metrics.REGISTRY.snapshot(),
        obs_timeline.TIMELINE.snapshot()["events"],
    )
