"""The Monte-Carlo runner: one driver for every figure experiment.

:class:`MonteCarloRunner` executes a :class:`~repro.runner.scenario.
Scenario` — sweep axis × repetitions — either in-process or over an opt-in
process pool (``ExperimentConfig.parallel`` / the CLI's ``--parallel N``).

Determinism contract
--------------------

Results are a pure function of ``(scenario, config)``:

* per-run RNGs come from order-independent seed derivation
  (:func:`repro.runner.scenario.run_rng`), so run *i* draws the same sample
  whether 5 or 500 runs were requested;
* samples are reduced in (point, run) order regardless of completion
  order, so parallel floating-point aggregation matches serial bit for bit.

``--parallel N`` therefore changes wall-clock only: stdout tables, result
objects, and figure rows are byte-identical for every N.

Parallel execution
------------------

Workers are plain ``multiprocessing`` pool processes.  The packed
visibility tensor — the ~100 MB artifact every kernel reads — is exported
once through :mod:`multiprocessing.shared_memory`
(:mod:`repro.runner.shared`) and installed into each worker's
:class:`~repro.experiments.common.ExperimentContext` at pool startup, so
spawning N workers costs N page-table mappings, not N tensor pickles.

Each repetition runs inside a worker-local observability capture: its span
records, metric deltas, and simulation-timeline events travel back with the
sample and are folded into the parent's collectors
(``Tracer.merge_snapshot`` / ``MetricsRegistry.merge`` /
``timeline.extend``), so a parallel run still produces ONE run report with
every per-run wall time in the ``trace.span_seconds.runner.run.<name>``
histogram the bench schema records.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentContext,
    default_context,
)
from repro.obs import get_logger, metrics
from repro.obs import timeline as obs_timeline
from repro.obs import trace as obs_trace
from repro.obs.timeline import TimelineEvent
from repro.obs.trace import span
from repro.runner.scenario import RunContext, Scenario, run_rng
from repro.runner.shared import (
    SharedVisibilityHandle,
    attach_packed_visibility,
    ensure_shared_visibility,
    unlink_shared_visibility,
)

_LOG = get_logger(__name__)

_RUNS_TOTAL = metrics.counter("runner.runs")
_WORKERS = metrics.gauge("runner.workers")

#: The synthetic pool every scenario samples from (seed of the Starlink
#: shells); part of the visibility cache key.
POOL_SEED = 0

#: One parallel task: (point_index, run_index).
_Task = Tuple[int, int]

#: What a worker sends back per repetition: indices, the kernel's sample,
#: its wall time, and the observability capture (trace snapshot, metrics
#: snapshot, timeline event dicts).
_Payload = Tuple[int, int, Any, float, Dict, Dict, List[Dict]]


class MonteCarloRunner:
    """Executes scenarios: sweep × repetitions, serial or process-parallel.

    Args:
        config: The experiment configuration (``config.parallel`` sets the
            default worker count).
        context: Artifact cache to run against (default: the process-default
            context, so CLI/benchmark invocations share one tensor).
        parallel: Overrides ``config.parallel`` when given.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        context: Optional[ExperimentContext] = None,
        parallel: Optional[int] = None,
    ) -> None:
        workers = config.parallel if parallel is None else parallel
        if workers < 1:
            raise ValueError(f"parallel must be >= 1, got {workers}")
        if config.runs < 1:
            raise ValueError(f"runs must be >= 1, got {config.runs}")
        self.config = config
        self.context = context if context is not None else default_context()
        self.parallel = workers

    # -- public API ---------------------------------------------------------

    def run(self, scenario: Scenario) -> Any:
        """Execute a scenario end to end; returns ``scenario.finalize(...)``."""
        points, samples = self.collect(scenario)
        with span(f"reduce.{scenario.name}"):
            reduced = [
                scenario.reduce(point, index, samples[index], self.config)
                for index, point in enumerate(points)
            ]
            return scenario.finalize(reduced, self.config)

    def collect(self, scenario: Scenario) -> Tuple[List[Any], List[List[Any]]]:
        """Run every repetition; returns (points, samples per point).

        Samples are ordered by run index within each point — the raw
        material :meth:`run` reduces, exposed for tests that pin the
        order-independence of per-run seeds.
        """
        points = list(scenario.sweep(self.config, self.context))
        scenario.prepare(self.context, self.config)
        tasks: List[_Task] = [
            (point_index, run_index)
            for point_index, point in enumerate(points)
            for run_index in range(scenario.runs_for(point, self.config))
        ]
        workers = min(self.parallel, len(tasks))
        _WORKERS.set(workers)
        with span(f"analysis.{scenario.name}"):
            if workers <= 1:
                by_task = self._collect_serial(scenario, points, tasks)
            else:
                by_task = self._collect_parallel(scenario, points, tasks, workers)
        samples: List[List[Any]] = [[] for _ in points]
        for point_index, run_index in tasks:
            samples[point_index].append(by_task[(point_index, run_index)])
        return points, samples

    # -- serial path ---------------------------------------------------------

    def _collect_serial(
        self, scenario: Scenario, points: List[Any], tasks: List[_Task]
    ) -> Dict[_Task, Any]:
        by_task: Dict[_Task, Any] = {}
        for point_index, run_index in tasks:
            ctx = RunContext(
                config=self.config,
                context=self.context,
                point=points[point_index],
                point_index=point_index,
                run_index=run_index,
                rng=run_rng(self.config.seed, scenario.salt, point_index, run_index),
                pool_seed=POOL_SEED,
            )
            with span(f"runner.run.{scenario.name}"):
                by_task[(point_index, run_index)] = scenario.run_one(ctx, run_index)
            _RUNS_TOTAL.inc()
        return by_task

    # -- parallel path --------------------------------------------------------

    def _collect_parallel(
        self,
        scenario: Scenario,
        points: List[Any],
        tasks: List[_Task],
        workers: int,
    ) -> Dict[_Task, Any]:
        handle: Optional[SharedVisibilityHandle] = None
        segment = None
        if scenario.uses_pool:
            # Cache-aware: on a miss the tensor is chunk-streamed straight
            # into a context-owned segment (no copy); ``segment`` is only
            # returned — and unlinked below — for the copy fallback.
            handle, segment = ensure_shared_visibility(
                self.context, self.config, POOL_SEED
            )
        mp_context = _start_context()
        chunksize = max(1, len(tasks) // (workers * 8))
        _LOG.info(
            "parallel %s: %d tasks on %d workers (chunksize %d, start=%s)",
            scenario.name, len(tasks), workers, chunksize,
            mp_context.get_start_method(),
        )
        try:
            with mp_context.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(scenario, self.config, points, handle, POOL_SEED),
            ) as pool:
                payloads = pool.map(_run_task, tasks, chunksize=chunksize)
        finally:
            if segment is not None:
                unlink_shared_visibility(segment)
        return self._merge_payloads(payloads)

    def _merge_payloads(self, payloads: Sequence[_Payload]) -> Dict[_Task, Any]:
        """Fold worker observability into the parent; return samples by task.

        Payloads merge in (point, run) order — not completion order — so
        the parent's timeline and span record streams are as deterministic
        as the serial path's.
        """
        by_task: Dict[_Task, Any] = {}
        for payload in sorted(payloads, key=lambda item: (item[0], item[1])):
            point_index, run_index, sample, wall_s, trace_snap, metric_snap, events = (
                payload
            )
            by_task[(point_index, run_index)] = sample
            # Worker span starts are relative to the worker's task-start
            # epoch; re-base them so each task's records end "now" on the
            # parent clock (durations — the quantity bench-compare reads —
            # are exact either way).
            offset = obs_trace.TRACER.now_s() - wall_s
            obs_trace.TRACER.merge_snapshot(trace_snap, start_offset_s=offset)
            metrics.REGISTRY.merge(metric_snap)
            obs_timeline.extend(TimelineEvent.from_dict(event) for event in events)
            _RUNS_TOTAL.inc()
        return by_task


def run_scenario(
    scenario: Scenario,
    config: ExperimentConfig,
    context: Optional[ExperimentContext] = None,
    parallel: Optional[int] = None,
) -> Any:
    """Convenience one-shot: build a runner and execute ``scenario``."""
    return MonteCarloRunner(config, context=context, parallel=parallel).run(scenario)


def _start_context():
    """Fork where the platform offers it (cheap, inherits imports); spawn
    otherwise.  Both work: workers receive everything through initargs and
    the shared-memory handle, never through inherited globals."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- worker-side machinery ----------------------------------------------------
#
# Module-level (not closures) so both fork and spawn start methods can
# pickle/resolve them.  One _WorkerState per worker process, built once by
# the pool initializer and reused across tasks.


class _WorkerState:
    __slots__ = ("scenario", "config", "points", "context", "segment", "pool_seed")

    def __init__(self, scenario, config, points, context, segment, pool_seed):
        self.scenario = scenario
        self.config = config
        self.points = points
        self.context = context
        self.segment = segment  # Keeps the shm mapping alive for the tensor.
        self.pool_seed = pool_seed


_WORKER: Optional[_WorkerState] = None


def _init_worker(
    scenario: Scenario,
    config: ExperimentConfig,
    points: List[Any],
    handle: Optional[SharedVisibilityHandle],
    pool_seed: int,
) -> None:
    """Pool initializer: private context, shared tensor attached (no copy)."""
    global _WORKER
    context = ExperimentContext()
    segment = None
    if handle is not None:
        segment, visibility = attach_packed_visibility(handle)
        context.install_visibility(config, visibility, pool_seed=pool_seed)
    _WORKER = _WorkerState(scenario, config, points, context, segment, pool_seed)


def _run_task(task: _Task) -> _Payload:
    """Execute one repetition in a worker and capture its observability.

    The worker's collectors are reset at task start and snapshotted at task
    end, so the payload carries exactly this repetition's spans, metric
    deltas, and timeline events for the parent to merge.
    """
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before _init_worker")
    point_index, run_index = task
    obs_trace.TRACER.reset()
    metrics.REGISTRY.reset()
    obs_timeline.TIMELINE.reset()
    ctx = RunContext(
        config=state.config,
        context=state.context,
        point=state.points[point_index],
        point_index=point_index,
        run_index=run_index,
        rng=run_rng(state.config.seed, state.scenario.salt, point_index, run_index),
        pool_seed=state.pool_seed,
    )
    start = time.perf_counter()
    with span(f"runner.run.{state.scenario.name}"):
        sample = state.scenario.run_one(ctx, run_index)
    wall_s = time.perf_counter() - start
    return (
        point_index,
        run_index,
        sample,
        wall_s,
        obs_trace.TRACER.snapshot(),
        metrics.REGISTRY.snapshot(),
        obs_timeline.TIMELINE.snapshot()["events"],
    )
