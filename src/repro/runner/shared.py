"""Zero-copy world-state sharing for parallel Monte-Carlo workers.

The packed visibility tensor of the full synthetic Starlink pool is the one
big experiment artifact (~100 MB for a week at 60 s steps).  Pickling it to
every worker process would dominate parallel startup and multiply resident
memory by the worker count; instead the parent copies the packed bytes into
a :mod:`multiprocessing.shared_memory` segment once, and every worker maps
the same physical pages read-only-by-convention:

    parent:  shm, handle = share_packed_visibility(visibility)
    worker:  shm, visibility = attach_packed_visibility(handle)   # no copy

The :class:`SharedVisibilityHandle` is a tiny picklable descriptor (name +
shape + grid); the segment itself never crosses the pipe.  The parent owns
the segment's lifetime: close+unlink in a ``finally`` via
:func:`unlink_shared_visibility` once the pool has joined.

The intervals engine shares the same way: the five CSR arrays of a
:class:`~repro.sim.intervals.ContactIntervals` (rise/set times, truncation
flags, pair offsets) are packed back to back into ONE segment at fixed
offsets (:func:`_intervals_layout`), and workers rebuild the object from
zero-copy views (:func:`attach_contact_intervals`).  When shared memory is
unavailable, :func:`ensure_shared_intervals` degrades to a
:class:`PickledIntervalsFallback` that ships the windows by value through
the pool initializer — correct either way, only startup cost differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentContext,
    _register_segment_owner,
    visibility_cache_key,
)
from repro.obs import get_logger
from repro.sim.clock import TimeGrid
from repro.sim.intervals import ContactIntervals
from repro.sim.visibility import PackedVisibility

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class SharedVisibilityHandle:
    """Picklable descriptor of a shared packed-visibility segment."""

    shm_name: str
    shape: Tuple[int, int, int]  # (sites, satellites, packed bytes)
    n_times: int
    grid: TimeGrid

    @property
    def nbytes(self) -> int:
        sites, sats, packed_bytes = self.shape
        return sites * sats * packed_bytes


def share_packed_visibility(
    visibility: PackedVisibility,
) -> Tuple[shared_memory.SharedMemory, SharedVisibilityHandle]:
    """Copy a tensor into shared memory; returns (segment, handle).

    The caller (the parent process) keeps the segment object alive while
    workers run and must close+unlink it afterwards
    (:func:`unlink_shared_visibility`).
    """
    packed = np.ascontiguousarray(visibility.packed)
    segment = shared_memory.SharedMemory(create=True, size=packed.nbytes)
    view = np.ndarray(packed.shape, dtype=np.uint8, buffer=segment.buf)
    view[:] = packed
    handle = SharedVisibilityHandle(
        shm_name=segment.name,
        shape=tuple(packed.shape),
        n_times=visibility.n_times,
        grid=visibility.grid,
    )
    _LOG.info(
        "shared visibility tensor %s: %.1f MB, shape %s",
        segment.name, packed.nbytes / 1e6, packed.shape,
    )
    return segment, handle


def attach_packed_visibility(
    handle: SharedVisibilityHandle,
) -> Tuple[shared_memory.SharedMemory, PackedVisibility]:
    """Map an existing segment into this process; returns (segment, tensor).

    The worker must keep the returned segment object referenced for as long
    as the tensor is in use (the numpy array is a view into its buffer) and
    should ``close()`` it at shutdown — never ``unlink()``: the parent owns
    the segment.
    """
    segment = _attach_untracked(handle.shm_name)
    packed = np.ndarray(handle.shape, dtype=np.uint8, buffer=segment.buf)
    visibility = PackedVisibility(packed, handle.n_times, handle.grid)
    return segment, visibility


def _handle_for(visibility: PackedVisibility) -> SharedVisibilityHandle:
    return SharedVisibilityHandle(
        shm_name=visibility.segment.name,
        shape=tuple(visibility.packed.shape),
        n_times=visibility.n_times,
        grid=visibility.grid,
    )


def ensure_shared_visibility(
    context: ExperimentContext,
    config: ExperimentConfig,
    pool_seed: int = 0,
) -> Tuple[SharedVisibilityHandle, Optional[shared_memory.SharedMemory]]:
    """A shared-memory handle for the context's packed tensor, build-free
    when possible.

    Returns ``(handle, owned_segment)``.  Three paths:

    * **Cache miss** — the tensor is packed *straight into* a fresh segment
      (chunk-streamed via the ``out_allocator`` hook), so it is born shared:
      no second copy, no doubled peak.  The segment is attached to the
      cached tensor (``visibility.segment``) and owned by the context —
      later parallel runs against the same config reuse it for free;
      ``owned_segment`` is None.
    * **Cache hit, shm-backed** — reuse the live segment; ``owned_segment``
      is None.
    * **Cache hit, heap-backed** (tensor built outside any parallel run) —
      fall back to copying into a throwaway segment; ``owned_segment`` is
      that segment and the caller must
      :func:`unlink_shared_visibility` it after the pool joins.
    """
    cached = context.cached_visibility().get(
        visibility_cache_key(config, pool_seed)
    )
    if cached is not None:
        if cached.segment is not None:
            return _handle_for(cached), None
        segment, handle = share_packed_visibility(cached)
        return handle, segment

    segments = []

    def allocate(shape: Tuple[int, int, int]) -> np.ndarray:
        size = max(1, int(np.prod(shape)))
        segment = shared_memory.SharedMemory(create=True, size=size)
        segments.append(segment)
        return np.ndarray(shape, dtype=np.uint8, buffer=segment.buf)

    visibility = context.visibility(config, pool_seed, out_allocator=allocate)
    if not segments:  # pragma: no cover - raced install; copy instead
        segment, handle = share_packed_visibility(visibility)
        return handle, segment
    visibility.segment = segments[0]
    _register_segment_owner(context)
    _LOG.info(
        "packed tensor born shared in %s: %.1f MB",
        segments[0].name, segments[0].size / 1e6,
    )
    return _handle_for(visibility), None


@dataclass(frozen=True)
class SharedIntervalsHandle:
    """Picklable descriptor of a shared contact-intervals segment."""

    shm_name: str
    n_sites: int
    n_satellites: int
    start_s: float
    end_s: float
    n_contacts: int

    @property
    def nbytes(self) -> int:
        _, total = _intervals_layout(
            self.n_sites, self.n_satellites, self.n_contacts
        )
        return total


@dataclass(frozen=True)
class PickledIntervalsFallback:
    """Pickle-copy fallback handle when shared memory is unavailable.

    Carries the :class:`ContactIntervals` by value through the pool
    initializer — each worker gets a private copy.  Windows are small
    (tens of MB at megaconstellation scale vs ~100 MB+ for the packed
    tensor), so the copy is an acceptable degradation, never a
    correctness change.
    """

    contacts: ContactIntervals


def _intervals_layout(n_sites: int, n_satellites: int, n_contacts: int):
    """Byte layout of one CSR-interval segment: {array: (offset, dtype, count)}.

    The five arrays are packed back to back in a fixed order; every array
    starts at an 8-byte-aligned offset because the float64/int64 arrays
    come first and the bool arrays last.
    """
    layout = {}
    cursor = 0
    for name, dtype, count in (
        ("rise_s", np.float64, n_contacts),
        ("set_s", np.float64, n_contacts),
        ("pair_offsets", np.int64, n_sites * n_satellites + 1),
        ("truncated_start", np.bool_, n_contacts),
        ("truncated_end", np.bool_, n_contacts),
    ):
        layout[name] = (cursor, np.dtype(dtype), int(count))
        cursor += np.dtype(dtype).itemsize * int(count)
    return layout, cursor


def _intervals_views(
    segment: shared_memory.SharedMemory, handle: SharedIntervalsHandle
) -> dict:
    layout, _ = _intervals_layout(
        handle.n_sites, handle.n_satellites, handle.n_contacts
    )
    return {
        name: np.ndarray(
            (count,), dtype=dtype, buffer=segment.buf, offset=offset
        )
        for name, (offset, dtype, count) in layout.items()
    }


def _intervals_handle_for(
    contacts: ContactIntervals, shm_name: str
) -> SharedIntervalsHandle:
    return SharedIntervalsHandle(
        shm_name=shm_name,
        n_sites=contacts.n_sites,
        n_satellites=contacts.n_satellites,
        start_s=contacts.start_s,
        end_s=contacts.end_s,
        n_contacts=contacts.n_contacts,
    )


def share_contact_intervals(
    contacts: ContactIntervals,
) -> Tuple[shared_memory.SharedMemory, SharedIntervalsHandle]:
    """Copy CSR interval arrays into one shared segment; (segment, handle).

    Same ownership contract as :func:`share_packed_visibility`: the caller
    keeps the segment alive while workers run and releases it afterwards
    (:func:`unlink_shared_visibility` works on any segment).
    """
    _, total = _intervals_layout(
        contacts.n_sites, contacts.n_satellites, contacts.n_contacts
    )
    segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    handle = _intervals_handle_for(contacts, segment.name)
    for name, view in _intervals_views(segment, handle).items():
        view[:] = getattr(contacts, name)
    _LOG.info(
        "shared contact intervals %s: %.1f MB, %d windows",
        segment.name, total / 1e6, contacts.n_contacts,
    )
    return segment, handle


def attach_contact_intervals(
    handle: SharedIntervalsHandle,
) -> Tuple[shared_memory.SharedMemory, ContactIntervals]:
    """Map a shared interval segment; returns (segment, contacts) — no copy.

    As with :func:`attach_packed_visibility`, the worker must keep the
    segment referenced while the contacts are in use and must never
    ``unlink()`` it: the parent owns the segment.
    """
    segment = _attach_untracked(handle.shm_name)
    views = _intervals_views(segment, handle)
    contacts = ContactIntervals(
        n_sites=handle.n_sites,
        n_satellites=handle.n_satellites,
        start_s=handle.start_s,
        end_s=handle.end_s,
        rise_s=views["rise_s"],
        set_s=views["set_s"],
        truncated_start=views["truncated_start"],
        truncated_end=views["truncated_end"],
        pair_offsets=views["pair_offsets"],
    )
    return segment, contacts


def ensure_shared_intervals(
    context: ExperimentContext,
    config: ExperimentConfig,
    pool_seed: int = 0,
):
    """A shareable handle for the context's contact intervals.

    Returns ``(handle, owned_segment)`` with the same caller contract as
    :func:`ensure_shared_visibility` (``owned_segment`` is always None
    here: interval segments are small, so the context adopts them and
    later runs against the same config reuse the mapping for free).  The
    cached object's CSR arrays are rebound onto the segment views, so the
    shared copy is the only resident one.  If the platform refuses shared
    memory, degrades to a :class:`PickledIntervalsFallback`.
    """
    contacts = context.contact_intervals(config, pool_seed)
    if contacts.segment is not None:
        return _intervals_handle_for(contacts, contacts.segment.name), None
    try:
        segment, handle = share_contact_intervals(contacts)
    except OSError as error:
        _LOG.warning(
            "shared memory unavailable (%s); pickling %d contact windows "
            "to workers instead", error, contacts.n_contacts,
        )
        return PickledIntervalsFallback(contacts), None
    for name, view in _intervals_views(segment, handle).items():
        setattr(contacts, name, view)
    contacts.segment = segment
    _register_segment_owner(context)
    return handle, None


def unlink_shared_visibility(segment: shared_memory.SharedMemory) -> None:
    """Release a parent-owned segment (idempotent best effort)."""
    try:
        segment.close()
    except OSError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On POSIX, a process that merely *attaches* (create=False) still
    registers the segment with the resource tracker, which then unlinks it
    when any attacher exits — yanking the memory out from under the parent
    and every sibling worker, with "leaked shared_memory" noise for flavour
    (CPython issue bpo-38119).  Only the creating parent should own
    cleanup.  Python 3.13 grew ``track=False`` for exactly this; on older
    versions, suppress shared-memory registration for the duration of the
    attach (workers attach serially from the pool initializer, and the
    suppression window contains no other allocation).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter.
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
