"""A persistent, reusable Monte-Carlo worker pool.

Before this module, every :meth:`MonteCarloRunner.collect` spawned a fresh
``multiprocessing`` pool: N process forks, N shared-memory attaches, and N
context initializations *per scenario*.  A multi-figure CLI invocation
(``repro run --all --parallel 4``) paid that startup tax once per figure
even though every scenario reads the same world state.

:class:`PersistentPool` keeps the workers warm instead.  The pool is keyed
by everything that shapes worker-side state — engine, kernel backend,
experiment config, the world-state cache identity, and the live-telemetry
channel — and the runner reuses it for as long as the key matches
(:meth:`compatible`).  Workers are initialized once with world state only
(the shared packed tensor or CSR contact windows); scenarios travel with
each task, so the same workers serve fig2, fig5, and fig6 back to back.

Ownership: the pool belongs to the :class:`~repro.experiments.common.
ExperimentContext` that the runner executes against
(``context.adopt_worker_pool``), so ``context.clear()`` tears the workers
down along with the cached artifacts they map.  Disposal also releases the
copy-fallback shared-memory segment and the live bus channel when the pool
owns them.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.obs import get_logger, metrics

_LOG = get_logger(__name__)

_POOLS_SPAWNED = metrics.counter("runner.pool.spawned")
_POOLS_REUSED = metrics.counter("runner.pool.reused")


class PersistentPool:
    """A warm ``multiprocessing`` pool that outlives one scenario.

    Args:
        key: Hashable description of the worker-side state (engine,
            backend, config, world-state identity, live channel).  Reuse
            requires an exact match — anything that would change what
            ``_init_worker`` installed forces a respawn.
        workers: Process count.
        mp_context: The multiprocessing start context.
        initializer: Worker initializer (module-level, picklable).
        initargs: Its arguments.
        segment: A parent-owned shared-memory segment to release at
            disposal (the copy-fallback path; None when the context owns
            the segment).
        channel: The live-telemetry bus channel workers publish on (None
            in batch mode).  Closed at disposal.
    """

    def __init__(
        self,
        key: Tuple,
        workers: int,
        mp_context,
        initializer,
        initargs: Tuple,
        segment: Optional[Any] = None,
        channel: Optional[Any] = None,
    ) -> None:
        self.key = key
        self.workers = workers
        self.channel = channel
        self._segment = segment
        self._disposed = False
        self.scenarios_served = 0
        self._pool = mp_context.Pool(
            processes=workers, initializer=initializer, initargs=initargs
        )
        _POOLS_SPAWNED.inc()
        _LOG.info("spawned persistent pool: %d workers", workers)

    # -- execution ----------------------------------------------------------

    def map(self, func, tasks, chunksize: int):
        self.scenarios_served += 1
        if self.scenarios_served > 1:
            _POOLS_REUSED.inc()
        return self._pool.map(func, tasks, chunksize=chunksize)

    def map_async(self, func, tasks, chunksize: int):
        self.scenarios_served += 1
        if self.scenarios_served > 1:
            _POOLS_REUSED.inc()
        return self._pool.map_async(func, tasks, chunksize=chunksize)

    # -- lifecycle ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._disposed

    def compatible(self, key: Tuple, workers: int) -> bool:
        """Whether this pool can serve a run needing ``(key, workers)``.

        A larger pool serves a smaller request (extra workers idle); a
        smaller one cannot, and any key difference means the workers hold
        the wrong world state.
        """
        return self.alive and self.key == key and self.workers >= workers

    def dispose(self, terminate: bool = False) -> None:
        """Shut the workers down and release owned resources (idempotent).

        ``terminate=True`` kills workers instead of draining them — used
        after worker loss, when the pool's task queue state is suspect.
        """
        if self._disposed:
            return
        self._disposed = True
        try:
            if terminate:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
        except Exception:  # pragma: no cover - best-effort teardown
            _LOG.warning("pool teardown failed", exc_info=True)
        if self._segment is not None:
            from repro.runner.shared import unlink_shared_visibility

            unlink_shared_visibility(self._segment)
            self._segment = None
        if self.channel is not None:
            try:
                self.channel.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self.channel = None
        _LOG.info(
            "disposed persistent pool after %d scenario(s)",
            self.scenarios_served,
        )
