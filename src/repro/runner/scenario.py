"""The Scenario protocol: declarative Monte-Carlo experiments.

A *scenario* declares everything the runner needs to execute a paper-style
Monte-Carlo sweep:

* a **sweep axis** (:meth:`Scenario.sweep`) — the figure's x axis: the
  points the experiment is evaluated at;
* a pure **kernel** (:meth:`Scenario.run_one`) — one Monte-Carlo repetition
  at one point, a function of its :class:`RunContext` (which carries the
  per-run RNG) and nothing else;
* a **reduction** (:meth:`Scenario.reduce` / :meth:`Scenario.finalize`) —
  how per-run samples aggregate into the figure's reported rows.

Because the kernel is pure and the per-run RNG is derived
order-independently (below), the :class:`~repro.runner.monte_carlo.
MonteCarloRunner` may execute repetitions in any order, on any number of
processes, and produce identical results.

Seed derivation
---------------

Run *i* of sweep-point *p* of a scenario with stream salt *s* draws from::

    np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(s, p, i)))

``spawn_key`` is the stateless form of :meth:`numpy.random.SeedSequence.
spawn`: the child sequence depends only on ``(seed, s, p, i)``, never on
how many runs were requested or which order they execute in.  The previous
experiment layer drew every run from one sequential generator, so run *i*'s
sample silently depended on ``runs`` and on every run before it — the
regression tests in ``tests/runner`` pin the new invariant.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Sequence

import numpy as np

from repro.experiments.common import (
    ENGINE_GRID,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
)
from repro.sim.intervals import ContactIntervals
from repro.sim.visibility import PackedVisibility


def run_seed_sequence(
    seed: int, salt: int, point_index: int, run_index: int
) -> np.random.SeedSequence:
    """The order-independent seed of one (scenario, point, run) kernel."""
    return np.random.SeedSequence(seed, spawn_key=(salt, point_index, run_index))


def run_rng(
    seed: int, salt: int, point_index: int, run_index: int
) -> np.random.Generator:
    """A fresh generator for one Monte-Carlo repetition (see module doc)."""
    return np.random.default_rng(run_seed_sequence(seed, salt, point_index, run_index))


@dataclass
class RunContext:
    """Everything one Monte-Carlo repetition may read.

    Kernels treat the context as read-only: the runner constructs one per
    repetition, and the same construction happens identically inside
    parallel workers.

    Attributes:
        config: The experiment configuration.
        context: The artifact cache (pool + visibility) this run reads.
        point: The sweep-axis value being evaluated.
        point_index: Its index on the sweep axis (part of the RNG seed).
        run_index: The repetition number (part of the RNG seed).
        rng: This repetition's private generator.
        pool_seed: Which synthetic pool the scenario samples from.
    """

    config: ExperimentConfig
    context: ExperimentContext
    point: Any
    point_index: int
    run_index: int
    rng: np.random.Generator = field(repr=False)
    pool_seed: int = 0

    def visibility(self) -> PackedVisibility:
        """The packed visibility tensor for this run's configuration."""
        return self.context.visibility(self.config, self.pool_seed)

    def contacts(self) -> ContactIntervals:
        """The analytic contact intervals for this run's configuration."""
        return self.context.contact_intervals(self.config, self.pool_seed)

    def subset_query(self, fleet=None):
        """An engine-appropriate subset-coverage query (see
        :meth:`ExperimentContext.subset_query`).  Pool-wide by default;
        pass ``fleet`` to scope the precompute to a fixed satellite set."""
        return self.context.subset_query(self.config, fleet, self.pool_seed)

    @property
    def engine(self) -> str:
        """The context's contact engine (``"grid"`` or ``"intervals"``)."""
        return getattr(self.context, "engine", ENGINE_GRID)

    def pool_size(self) -> int:
        """Number of satellites in the sampling pool."""
        return len(self.context.pool(self.pool_seed))


class Scenario(abc.ABC):
    """Base class for declarative Monte-Carlo experiments.

    Subclasses must be **picklable** (plain attributes only): the parallel
    runner ships the scenario object to worker processes once, at pool
    startup.

    Attributes:
        name: Short identifier; names the runner's spans
            (``analysis.<name>``, ``runner.run.<name>``) and bench entries.
        salt: The scenario's RNG stream salt.  Distinct per scenario so two
            scenarios at the same seed never draw correlated samples; the
            values carry over from the old per-figure ``config.rng(salt=N)``
            streams.
        uses_pool: Whether kernels read the packed pool visibility.  When
            True the runner builds the tensor once up front (and exports it
            to workers over shared memory in parallel mode).
    """

    name: str = "scenario"
    salt: int = 0
    uses_pool: bool = True

    def prepare(self, context: ExperimentContext, config: ExperimentConfig) -> None:
        """Build shared artifacts before any kernel runs (parent process)."""
        if self.uses_pool:
            if getattr(context, "engine", ENGINE_GRID) == ENGINE_INTERVALS:
                context.contact_intervals(config)
            else:
                context.visibility(config)

    @abc.abstractmethod
    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[Any]:
        """The sweep axis.  Validate inputs here — this runs in the parent,
        so a bad sweep raises before any worker spawns."""

    def runs_for(self, point: Any, config: ExperimentConfig) -> int:
        """Repetitions at one point (default ``config.runs``; deterministic
        scenarios return 1)."""
        return config.runs

    @abc.abstractmethod
    def run_one(self, ctx: RunContext, run_index: int) -> Any:
        """One Monte-Carlo repetition: a pure function of ``ctx``.

        The return value must be picklable — in parallel mode it travels
        back from a worker process.
        """

    @abc.abstractmethod
    def reduce(
        self,
        point: Any,
        point_index: int,
        samples: List[Any],
        config: ExperimentConfig,
    ) -> Any:
        """Aggregate one point's samples (ordered by run index) into the
        figure's reported row."""

    def finalize(self, reduced: List[Any], config: ExperimentConfig) -> Any:
        """Assemble the experiment's result object from the reduced rows."""
        return reduced
