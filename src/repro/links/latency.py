"""Propagation latency: why LEO and not GEO (§2).

"One might wonder — why not use geostationary satellites that do not move
with respect to earth?  Such satellites operate at heights of around
36000 Km, leading to orders of magnitude degradation in network latency
(second-level) and capacity compared to LEO satellites."

This module computes bent-pipe latency from geometry so that claim is a
measurement, not an assertion: user -> satellite -> ground station, both
hops at the speed of light, plus a configurable processing allowance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import EARTH_MEAN_RADIUS_M, SPEED_OF_LIGHT
from repro.orbits.topocentric import slant_range_m

#: Geostationary orbital radius, meters.
GEO_RADIUS_M = 42_164_000.0

#: Geostationary altitude, km (for convenience/printing).
GEO_ALTITUDE_KM = (GEO_RADIUS_M - EARTH_MEAN_RADIUS_M) / 1000.0


@dataclass(frozen=True)
class BentPipeLatency:
    """One-way and round-trip latency of a bent-pipe hop pair."""

    uplink_s: float
    downlink_s: float
    processing_s: float

    @property
    def one_way_s(self) -> float:
        return self.uplink_s + self.downlink_s + self.processing_s

    @property
    def round_trip_s(self) -> float:
        return 2.0 * self.one_way_s

    @property
    def one_way_ms(self) -> float:
        return 1000.0 * self.one_way_s

    @property
    def round_trip_ms(self) -> float:
        return 1000.0 * self.round_trip_s


def bent_pipe_latency(
    orbital_radius_m: float,
    user_elevation_deg: float,
    station_elevation_deg: float,
    processing_s: float = 0.0,
) -> BentPipeLatency:
    """Latency of one bent-pipe traversal at given hop elevations.

    Args:
        orbital_radius_m: Satellite orbital radius.
        user_elevation_deg: Elevation of the satellite from the user.
        station_elevation_deg: Elevation from the ground station.
        processing_s: Transponder/ground processing allowance.

    Raises:
        ValueError: On non-positive radius or negative processing time.
    """
    if orbital_radius_m <= EARTH_MEAN_RADIUS_M:
        raise ValueError("orbital radius must exceed the Earth radius")
    if processing_s < 0.0:
        raise ValueError("processing time must be non-negative")
    uplink = slant_range_m(orbital_radius_m, user_elevation_deg) / SPEED_OF_LIGHT
    downlink = (
        slant_range_m(orbital_radius_m, station_elevation_deg) / SPEED_OF_LIGHT
    )
    return BentPipeLatency(uplink, downlink, processing_s)


def latency_bounds_ms(
    altitude_km: float,
    min_elevation_deg: float = 25.0,
) -> Tuple[float, float]:
    """(best, worst) one-way bent-pipe latency in ms for an altitude.

    Best case: satellite at zenith for both hops; worst case: both hops at
    the elevation mask.
    """
    radius = EARTH_MEAN_RADIUS_M + altitude_km * 1000.0
    best = bent_pipe_latency(radius, 90.0, 90.0).one_way_ms
    worst = bent_pipe_latency(
        radius, min_elevation_deg, min_elevation_deg
    ).one_way_ms
    return best, worst


def geo_vs_leo_round_trip_ms(
    leo_altitude_km: float = 550.0,
    min_elevation_deg: float = 25.0,
) -> Tuple[float, float]:
    """(LEO, GEO) worst-case bent-pipe round-trip latencies in ms.

    The §2 comparison: GEO's ~0.5 s round trip vs LEO's tens of ms.
    """
    leo_radius = EARTH_MEAN_RADIUS_M + leo_altitude_km * 1000.0
    leo = bent_pipe_latency(
        leo_radius, min_elevation_deg, min_elevation_deg
    ).round_trip_ms
    geo = bent_pipe_latency(
        GEO_RADIUS_M, min_elevation_deg, min_elevation_deg
    ).round_trip_ms
    return leo, geo


def latency_distribution_ms(
    orbital_radius_m: float,
    elevations_deg: np.ndarray,
    station_elevation_deg: float = 40.0,
) -> np.ndarray:
    """One-way latencies (ms) for an array of observed user elevations.

    Useful for turning a visibility run's elevation samples into a latency
    distribution.
    """
    elevations = np.asarray(elevations_deg, dtype=np.float64)
    result = np.empty(elevations.shape)
    flat = elevations.reshape(-1)
    out = result.reshape(-1)
    for index, elevation in enumerate(flat):
        out[index] = bent_pipe_latency(
            orbital_radius_m, float(elevation), station_elevation_deg
        ).one_way_ms
    return result
