"""Channel capacity: Shannon bound and a DVB-S2-style MODCOD ladder.

The transparent bent-pipe design leaves waveform choice to terminals and
ground stations (§3.1), so the library models capacity two ways:

* :func:`shannon_capacity_bps` — the information-theoretic ceiling, used for
  idealized capacity accounting.
* :func:`select_modcod` — a realistic adaptive-coding-and-modulation ladder
  patterned on DVB-S2(X) operating points, used by the event simulator to
  turn SNR into an achievable data rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


def shannon_capacity_bps(bandwidth_hz: float, snr_linear: float) -> float:
    """Shannon capacity C = B * log2(1 + SNR).

    Raises:
        ValueError: On non-positive bandwidth or negative SNR.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    if snr_linear < 0.0:
        raise ValueError(f"SNR must be non-negative, got {snr_linear}")
    return bandwidth_hz * math.log2(1.0 + snr_linear)


@dataclass(frozen=True)
class ModCod:
    """One modulation-and-coding operating point."""

    name: str
    spectral_efficiency_bps_hz: float
    required_snr_db: float

    def rate_bps(self, bandwidth_hz: float) -> float:
        return self.spectral_efficiency_bps_hz * bandwidth_hz


#: DVB-S2 operating points (subset), sorted by required SNR ascending.
#: Efficiencies and Es/N0 thresholds follow ETSI EN 302 307 Table 13.
MODCOD_TABLE: Sequence[ModCod] = (
    ModCod("QPSK 1/4", 0.490, -2.35),
    ModCod("QPSK 1/2", 0.989, 1.00),
    ModCod("QPSK 3/4", 1.487, 4.03),
    ModCod("QPSK 8/9", 1.766, 6.20),
    ModCod("8PSK 3/4", 2.228, 7.91),
    ModCod("8PSK 8/9", 2.646, 10.69),
    ModCod("16APSK 3/4", 2.967, 10.21),
    ModCod("16APSK 8/9", 3.523, 12.89),
    ModCod("32APSK 4/5", 3.952, 15.69),
    ModCod("32APSK 9/10", 4.453, 16.05),
)


def select_modcod(
    snr_db: float, table: Sequence[ModCod] = MODCOD_TABLE
) -> Optional[ModCod]:
    """Pick the highest-efficiency MODCOD whose threshold the SNR meets.

    Returns:
        The chosen operating point, or None when even the most robust entry
        cannot close (link outage).
    """
    best: Optional[ModCod] = None
    for modcod in table:
        if snr_db >= modcod.required_snr_db:
            if best is None or (
                modcod.spectral_efficiency_bps_hz > best.spectral_efficiency_bps_hz
            ):
                best = modcod
    return best


def achievable_rate_bps(
    snr_db: float, bandwidth_hz: float, table: Sequence[ModCod] = MODCOD_TABLE
) -> float:
    """Achievable rate under the MODCOD ladder (0 when the link cannot close)."""
    modcod = select_modcod(snr_db, table)
    if modcod is None:
        return 0.0
    return modcod.rate_bps(bandwidth_hz)


def modcod_staircase(
    table: Sequence[ModCod] = MODCOD_TABLE,
) -> "tuple":
    """Monotone (thresholds_db, efficiencies) arrays for vectorized lookup.

    The raw table is not monotone (some operating points have a lower
    threshold *and* a higher efficiency than others); the staircase keeps,
    at each threshold, the best efficiency achievable at or below it, so
    ``efficiencies[searchsorted(thresholds, snr, 'right') - 1]`` equals
    :func:`select_modcod`'s answer.
    """
    import numpy as np

    ordered = sorted(table, key=lambda modcod: modcod.required_snr_db)
    thresholds = np.array([modcod.required_snr_db for modcod in ordered])
    efficiencies = np.maximum.accumulate(
        np.array([modcod.spectral_efficiency_bps_hz for modcod in ordered])
    )
    return thresholds, efficiencies


def achievable_rates_bps_array(
    snr_db, bandwidth_hz: float, table: Sequence[ModCod] = MODCOD_TABLE
):
    """Vectorized :func:`achievable_rate_bps` over an SNR array."""
    import numpy as np

    thresholds, efficiencies = modcod_staircase(table)
    snr = np.asarray(snr_db, dtype=np.float64)
    indices = np.searchsorted(thresholds, snr, side="right") - 1
    rates = np.where(
        indices >= 0,
        efficiencies[np.clip(indices, 0, None)] * bandwidth_hz,
        0.0,
    )
    return rates
