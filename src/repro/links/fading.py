"""Rain attenuation and link margining.

Ku/Ka-band satellite links fade in rain, and a *transparent* bent pipe
amplifies uplink fades straight into the downlink (§3.1's architecture has
no on-board regeneration to clean them up), so fade modelling matters more
for MP-LEO than for regenerative designs.

The model is a simplified ITU-R P.838 power law: specific attenuation
``gamma = k * R^alpha`` dB/km for rain rate R mm/h, integrated over an
effective slant path through the rain layer.  Coefficients are tabulated at
the library's band centers; they interpolate the published values well
within the fidelity needed for margin studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: ITU-R P.838-style (k, alpha) power-law coefficients by frequency (GHz),
#: circular polarization.  Interpolated logarithmically between entries.
_RAIN_COEFFICIENTS: Tuple[Tuple[float, float, float], ...] = (
    # (frequency_ghz, k, alpha)
    (4.0, 0.00065, 1.121),
    (8.0, 0.00454, 1.327),
    (12.0, 0.0188, 1.217),
    (15.0, 0.0367, 1.154),
    (20.0, 0.0751, 1.099),
    (30.0, 0.187, 1.021),
    (40.0, 0.350, 0.939),
)

#: Mean rain-layer height above ground, meters (mid-latitude average).
DEFAULT_RAIN_HEIGHT_M = 4000.0


def rain_coefficients(frequency_hz: float) -> Tuple[float, float]:
    """(k, alpha) power-law coefficients at a frequency.

    Log-linear interpolation in frequency between tabulated points;
    clamped at the table's ends.

    Raises:
        ValueError: On a non-positive frequency.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    frequency_ghz = frequency_hz / 1e9
    table = _RAIN_COEFFICIENTS
    if frequency_ghz <= table[0][0]:
        return table[0][1], table[0][2]
    if frequency_ghz >= table[-1][0]:
        return table[-1][1], table[-1][2]
    for (f_low, k_low, a_low), (f_high, k_high, a_high) in zip(table, table[1:]):
        if f_low <= frequency_ghz <= f_high:
            fraction = (math.log(frequency_ghz) - math.log(f_low)) / (
                math.log(f_high) - math.log(f_low)
            )
            k = math.exp(
                math.log(k_low) + fraction * (math.log(k_high) - math.log(k_low))
            )
            alpha = a_low + fraction * (a_high - a_low)
            return k, alpha
    raise AssertionError("unreachable: table scan must find a bracket")


def specific_attenuation_db_per_km(
    rain_rate_mm_h: float, frequency_hz: float
) -> float:
    """gamma = k * R^alpha, dB/km.

    Raises:
        ValueError: On a negative rain rate.
    """
    if rain_rate_mm_h < 0.0:
        raise ValueError(f"rain rate must be non-negative, got {rain_rate_mm_h}")
    if rain_rate_mm_h == 0.0:
        return 0.0
    k, alpha = rain_coefficients(frequency_hz)
    return k * rain_rate_mm_h**alpha


def effective_path_km(
    elevation_deg: float, rain_height_m: float = DEFAULT_RAIN_HEIGHT_M
) -> float:
    """Slant path length through the rain layer, km.

    Flat-layer geometry with a floor at 5 degrees elevation (below which
    the flat-Earth secant blows up and real models switch to horizontal
    reduction factors — the coverage mask keeps us above it anyway).
    """
    clamped = max(5.0, min(90.0, elevation_deg))
    return rain_height_m / 1000.0 / math.sin(math.radians(clamped))


def rain_attenuation_db(
    rain_rate_mm_h: float,
    frequency_hz: float,
    elevation_deg: float,
    rain_height_m: float = DEFAULT_RAIN_HEIGHT_M,
) -> float:
    """Total rain attenuation of one hop, dB."""
    gamma = specific_attenuation_db_per_km(rain_rate_mm_h, frequency_hz)
    return gamma * effective_path_km(elevation_deg, rain_height_m)


@dataclass(frozen=True)
class RainClimate:
    """A site's rain statistics (exceedance curve approximated as lognormal).

    Attributes:
        rate_exceeded_001_mm_h: Rain rate exceeded 0.01% of the time
            (the ITU planning statistic; ~42 mm/h for temperate Taipei-like
            climates, >100 mm/h tropical).
        rainy_fraction: Fraction of time with any rain at all.
    """

    rate_exceeded_001_mm_h: float = 42.0
    rainy_fraction: float = 0.06

    def __post_init__(self) -> None:
        if self.rate_exceeded_001_mm_h <= 0.0:
            raise ValueError("exceedance rate must be positive")
        if not 0.0 < self.rainy_fraction < 1.0:
            raise ValueError("rainy fraction must be in (0, 1)")

    def sample_rain_rates(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw rain rates (mm/h) for ``count`` independent instants.

        Dry instants sample as 0; rainy instants draw from a lognormal
        calibrated so its 0.01%-of-total-time quantile matches the climate's
        planning statistic.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rates = np.zeros(count)
        rainy = rng.random(count) < self.rainy_fraction
        rainy_count = int(rainy.sum())
        if rainy_count:
            # Lognormal(mu, sigma): set sigma=1.2 (typical spread) and solve
            # mu so that P(rain) * P(X > R001 | rain) = 1e-4.
            sigma = 1.2
            exceed_within_rain = 1e-4 / self.rainy_fraction
            from math import erf, sqrt

            # Inverse normal CDF via binary search (scipy-free).
            target = 1.0 - exceed_within_rain

            def normal_cdf(x: float) -> float:
                return 0.5 * (1.0 + erf(x / sqrt(2.0)))

            low, high = -10.0, 10.0
            for _ in range(80):
                mid = (low + high) / 2.0
                if normal_cdf(mid) < target:
                    low = mid
                else:
                    high = mid
            z_quantile = (low + high) / 2.0
            mu = math.log(self.rate_exceeded_001_mm_h) - sigma * z_quantile
            rates[rainy] = rng.lognormal(mu, sigma, size=rainy_count)
        return rates


def fade_margin_db(
    availability_target: float,
    frequency_hz: float,
    elevation_deg: float,
    climate: RainClimate = RainClimate(),
) -> float:
    """Rain margin needed for a link availability target.

    Finds the attenuation exceeded ``(1 - target)`` of the time under the
    climate's lognormal model (analytically, via the rate quantile).

    Raises:
        ValueError: On a target outside (0, 1).
    """
    if not 0.0 < availability_target < 1.0:
        raise ValueError("target must be in (0, 1)")
    outage = 1.0 - availability_target
    if outage >= climate.rainy_fraction:
        return 0.0  # It only rains rainy_fraction of the time.
    # Rate exceeded `outage` of total time, from the calibrated lognormal.
    sigma = 1.2
    from math import erf, sqrt

    exceed_within_rain = outage / climate.rainy_fraction
    target_cdf = 1.0 - exceed_within_rain

    def normal_cdf(x: float) -> float:
        return 0.5 * (1.0 + erf(x / sqrt(2.0)))

    low, high = -10.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if normal_cdf(mid) < target_cdf:
            low = mid
        else:
            high = mid
    z_quantile = (low + high) / 2.0

    exceed_001_cdf = 1.0 - 1e-4 / climate.rainy_fraction
    low, high = -10.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if normal_cdf(mid) < exceed_001_cdf:
            low = mid
        else:
            high = mid
    z_001 = (low + high) / 2.0
    mu = math.log(climate.rate_exceeded_001_mm_h) - sigma * z_001
    rate = math.exp(mu + sigma * z_quantile)
    return rain_attenuation_db(rate, frequency_hz, elevation_deg)
