"""RF link budgets.

Standard satcom budget arithmetic in dB:

    C/N0 [dBHz] = EIRP + G/T - FSPL - L_extra - k

with ``k`` Boltzmann's constant in dBW/K/Hz.  Defaults approximate a
Ku-band LEO user link (Starlink-class terminal and satellite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import BOLTZMANN_DBW, SPEED_OF_LIGHT


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss in dB.

    Raises:
        ValueError: On non-positive distance or frequency.
    """
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return 20.0 * math.log10(4.0 * math.pi * distance_m * frequency_hz / SPEED_OF_LIGHT)


def antenna_gain_db(diameter_m: float, frequency_hz: float, efficiency: float = 0.6) -> float:
    """Parabolic antenna gain: G = eta * (pi * D * f / c)^2.

    Raises:
        ValueError: On non-positive diameter/frequency or efficiency not in (0, 1].
    """
    if diameter_m <= 0.0:
        raise ValueError(f"diameter must be positive, got {diameter_m}")
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return 10.0 * math.log10(
        efficiency * (math.pi * diameter_m * frequency_hz / SPEED_OF_LIGHT) ** 2
    )


@dataclass(frozen=True)
class LinkBudget:
    """One hop of an RF link (terminal->satellite or satellite->station).

    Attributes:
        eirp_dbw: Transmitter EIRP, dBW.
        gain_over_temperature_db_k: Receiver figure of merit G/T, dB/K.
        frequency_hz: Carrier frequency.
        bandwidth_hz: Allocated bandwidth.
        extra_losses_db: Atmospheric, pointing, polarization margins.
    """

    eirp_dbw: float
    gain_over_temperature_db_k: float
    frequency_hz: float
    bandwidth_hz: float
    extra_losses_db: float = 2.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz}")
        if self.extra_losses_db < 0.0:
            raise ValueError(
                f"extra losses must be non-negative, got {self.extra_losses_db}"
            )

    def carrier_to_noise_density_dbhz(self, distance_m: float) -> float:
        """C/N0 in dBHz at a slant range."""
        return (
            self.eirp_dbw
            + self.gain_over_temperature_db_k
            - free_space_path_loss_db(distance_m, self.frequency_hz)
            - self.extra_losses_db
            - BOLTZMANN_DBW
        )

    def snr_db(self, distance_m: float) -> float:
        """Carrier-to-noise ratio over the allocated bandwidth, dB."""
        return self.carrier_to_noise_density_dbhz(distance_m) - 10.0 * math.log10(
            self.bandwidth_hz
        )

    def snr_linear(self, distance_m: float) -> float:
        """Linear SNR over the allocated bandwidth."""
        return 10.0 ** (self.snr_db(distance_m) / 10.0)


#: Representative Ku-band uplink: Starlink-class phased-array user terminal
#: (~33 dBW EIRP) toward a LEO satellite with G/T ~ 9 dB/K.
KU_BAND_USER_UPLINK = LinkBudget(
    eirp_dbw=33.0,
    gain_over_temperature_db_k=9.0,
    frequency_hz=14.0e9,
    bandwidth_hz=62.5e6,
)

#: Representative Ku-band downlink: satellite EIRP ~ 36 dBW toward a gateway
#: with a 1.5 m dish (G/T ~ 31 dB/K).
KU_BAND_GATEWAY_DOWNLINK = LinkBudget(
    eirp_dbw=36.0,
    gain_over_temperature_db_k=31.0,
    frequency_hz=11.7e9,
    bandwidth_hz=62.5e6,
)
