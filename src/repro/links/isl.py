"""Inter-satellite links (the paper's §4 extension).

The baseline MP-LEO design deliberately omits ISLs ("our current design
omits ISLs to simplify satellite architecture and reduce costs. However,
future work can consider ISLs to enable data routing between satellites
without needing to relay signals through ground stations").  This module
implements that future work so the trade-off can be measured:

* :func:`isl_visibility` — which satellite pairs can maintain a link at a
  time: line-of-sight must clear the atmosphere-padded Earth and the range
  must be within the laser/RF terminal's reach.
* :func:`contact_graph` — the time-indexed connectivity graph (networkx).
* :class:`IslRouter` — shortest-path routing over the constellation, used
  by the relay analysis to answer "can this user's traffic reach *any*
  ground station of its party via ISL hops?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.constants import EARTH_MEAN_RADIUS_M, SPEED_OF_LIGHT

#: Grazing altitude for the line-of-sight test, meters: ISL beams must clear
#: the atmosphere (attenuation below ~80 km makes links unusable).
DEFAULT_GRAZING_ALTITUDE_M = 80_000.0

#: Default maximum ISL range, meters (typical optical ISL terminals close
#: links out to a few thousand km).
DEFAULT_MAX_RANGE_M = 5_000_000.0


def isl_visibility(
    positions_eci: np.ndarray,
    max_range_m: float = DEFAULT_MAX_RANGE_M,
    grazing_altitude_m: float = DEFAULT_GRAZING_ALTITUDE_M,
) -> np.ndarray:
    """Pairwise ISL feasibility at one instant.

    Args:
        positions_eci: (N, 3) satellite positions, meters.
        max_range_m: Maximum link range.
        grazing_altitude_m: Line-of-sight must pass above this altitude.

    Returns:
        (N, N) boolean symmetric matrix with a False diagonal.

    The line-of-sight test computes the minimum distance from Earth's center
    to the segment between two satellites; the link is blocked when that
    distance dips below ``EARTH_MEAN_RADIUS_M + grazing_altitude_m``.
    """
    positions = np.asarray(positions_eci, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {positions.shape}")
    count = positions.shape[0]
    blocked_radius = EARTH_MEAN_RADIUS_M + grazing_altitude_m

    delta = positions[None, :, :] - positions[:, None, :]  # (N, N, 3)
    distances = np.linalg.norm(delta, axis=-1)  # (N, N)

    # Closest approach of segment a->b to the origin: project -a onto (b-a).
    a_dot_d = np.einsum("ik,ijk->ij", positions, delta)  # (N, N)
    d_sq = np.einsum("ijk,ijk->ij", delta, delta)
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.where(d_sq > 0.0, -a_dot_d / d_sq, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = positions[:, None, :] + t[..., None] * delta  # (N, N, 3)
    min_center_distance = np.linalg.norm(closest, axis=-1)

    feasible = (
        (distances <= max_range_m)
        & (min_center_distance >= blocked_radius)
    )
    np.fill_diagonal(feasible, False)
    return feasible


def contact_graph(
    positions_eci: np.ndarray,
    sat_ids: Sequence[str],
    max_range_m: float = DEFAULT_MAX_RANGE_M,
    grazing_altitude_m: float = DEFAULT_GRAZING_ALTITUDE_M,
) -> nx.Graph:
    """Build the ISL connectivity graph at one instant.

    Edge weights are the one-way propagation delays in seconds.
    """
    positions = np.asarray(positions_eci, dtype=np.float64)
    if len(sat_ids) != positions.shape[0]:
        raise ValueError(
            f"need {positions.shape[0]} ids, got {len(sat_ids)}"
        )
    feasible = isl_visibility(positions, max_range_m, grazing_altitude_m)
    graph = nx.Graph()
    graph.add_nodes_from(sat_ids)
    rows, cols = np.nonzero(np.triu(feasible, k=1))
    for row, col in zip(rows, cols):
        distance = float(np.linalg.norm(positions[row] - positions[col]))
        graph.add_edge(
            sat_ids[row],
            sat_ids[col],
            distance_m=distance,
            delay_s=distance / SPEED_OF_LIGHT,
        )
    return graph


@dataclass(frozen=True)
class IslPath:
    """A routed multi-hop path through the constellation."""

    sat_ids: Tuple[str, ...]
    total_delay_s: float

    @property
    def hops(self) -> int:
        return len(self.sat_ids) - 1


class IslRouter:
    """Shortest-path routing over an instantaneous ISL graph.

    Example:
        >>> router = IslRouter(contact_graph(positions, ids))
        >>> path = router.route("SAT-A", "SAT-B")
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph

    def route(self, source: str, target: str) -> Optional[IslPath]:
        """Minimum-delay path, or None when disconnected.

        Raises:
            KeyError: On unknown satellite ids.
        """
        if source not in self.graph or target not in self.graph:
            raise KeyError(f"unknown satellite: {source!r} or {target!r}")
        try:
            nodes = nx.shortest_path(
                self.graph, source, target, weight="delay_s"
            )
        except nx.NetworkXNoPath:
            return None
        delay = nx.path_weight(self.graph, nodes, weight="delay_s")
        return IslPath(sat_ids=tuple(nodes), total_delay_s=float(delay))

    def reachable_set(self, source: str) -> set:
        """All satellites reachable from a source over ISLs (incl. itself)."""
        if source not in self.graph:
            raise KeyError(f"unknown satellite {source!r}")
        return nx.node_connected_component(self.graph, source)

    def connected_components(self) -> List[set]:
        """ISL connectivity islands, largest first."""
        return sorted(nx.connected_components(self.graph), key=len, reverse=True)


def relayable_with_isl(
    terminal_visible: np.ndarray,
    station_visible: np.ndarray,
    isl_feasible: np.ndarray,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Which terminal-visible satellites can reach a ground station via ISLs.

    The ISL variant of the bent-pipe eligibility rule: a satellite can serve
    a terminal when it either sees a ground station directly or can forward
    over ISL hops to a satellite that does.

    Args:
        terminal_visible: (N,) bool — terminal sees satellite n.
        station_visible: (N,) bool — satellite n sees a usable station.
        isl_feasible: (N, N) bool ISL matrix at the same instant.
        max_hops: Optional cap on forwarding hops (None = unlimited).

    Returns:
        (N,) bool — satellite n is usable for the terminal at this instant.
    """
    terminal_visible = np.asarray(terminal_visible, dtype=bool)
    station = np.asarray(station_visible, dtype=bool)
    feasible = np.asarray(isl_feasible, dtype=bool)
    count = terminal_visible.size
    if station.shape != (count,) or feasible.shape != (count, count):
        raise ValueError("shape mismatch between visibility inputs")

    # BFS from all station-visible satellites through the ISL graph.
    reach = station.copy()
    frontier = station.copy()
    hops = 0
    while frontier.any() and (max_hops is None or hops < max_hops):
        next_frontier = (feasible[frontier].any(axis=0)) & ~reach
        if not next_frontier.any():
            break
        reach |= next_frontier
        frontier = next_frontier
        hops += 1
    return terminal_visible & reach
