"""The transparent bent-pipe relay model (§3.1 of the paper).

In a *transparent* bent pipe the satellite never decodes the uplink: it
amplifies and re-transmits the raw waveform toward the ground station.  Two
consequences the model captures:

* **Noise composition.** Uplink noise is amplified along with the signal, so
  the end-to-end carrier-to-noise ratio composes as

      1 / SNR_total = 1 / SNR_up + 1 / SNR_down

  (the classical transparent-transponder cascade).  A regenerative (packet
  level) pipe, by contrast, re-encodes on board and the end-to-end quality is
  ``min(SNR_up, SNR_down)`` per hop.  Both variants are implemented because
  the paper's §4 discusses the packet-level alternative.

* **Simultaneous visibility.** A session needs the satellite above both the
  user terminal and a ground station *of the same party* at the same time.
  The geometry side of that condition lives in the simulator; this module
  provides the per-instant rate calculation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.links.budget import LinkBudget
from repro.links.channel import achievable_rate_bps, shannon_capacity_bps


class RelayMode(enum.Enum):
    """How the satellite handles the uplink signal."""

    TRANSPARENT = "transparent"  # RF repeater; noise cascades (paper's choice).
    REGENERATIVE = "regenerative"  # Decode-and-forward; per-hop limited.


@dataclass(frozen=True)
class TransparentTransponder:
    """Satellite-side parameters of a bent-pipe transponder.

    Attributes:
        gain_db: RF gain applied between receive and re-transmit (affects the
            downlink EIRP which the downlink budget already encodes; kept for
            completeness/diagnostics).
        bandwidth_hz: Transponder passband.
    """

    gain_db: float = 100.0
    bandwidth_hz: float = 62.5e6

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz}")


@dataclass(frozen=True)
class BentPipeLink:
    """An end-to-end user-terminal -> satellite -> ground-station link."""

    uplink: LinkBudget
    downlink: LinkBudget
    transponder: TransparentTransponder = TransparentTransponder()
    mode: RelayMode = RelayMode.TRANSPARENT

    def end_to_end_snr_linear(
        self, uplink_range_m: float, downlink_range_m: float
    ) -> float:
        """Composite SNR of the two hops, per the relay mode."""
        snr_up = self.uplink.snr_linear(uplink_range_m)
        snr_down = self.downlink.snr_linear(downlink_range_m)
        if snr_up <= 0.0 or snr_down <= 0.0:
            return 0.0
        if self.mode is RelayMode.TRANSPARENT:
            return 1.0 / (1.0 / snr_up + 1.0 / snr_down)
        return min(snr_up, snr_down)

    def end_to_end_snr_db(
        self, uplink_range_m: float, downlink_range_m: float
    ) -> float:
        snr = self.end_to_end_snr_linear(uplink_range_m, downlink_range_m)
        if snr <= 0.0:
            return -math.inf
        return 10.0 * math.log10(snr)

    def shannon_rate_bps(
        self, uplink_range_m: float, downlink_range_m: float
    ) -> float:
        """Shannon-bound end-to-end rate over the narrower hop bandwidth."""
        bandwidth = min(self.uplink.bandwidth_hz, self.downlink.bandwidth_hz)
        return shannon_capacity_bps(
            bandwidth, self.end_to_end_snr_linear(uplink_range_m, downlink_range_m)
        )

    def achievable_rate_bps(
        self, uplink_range_m: float, downlink_range_m: float
    ) -> float:
        """MODCOD-ladder end-to-end rate (0 on outage)."""
        snr_db = self.end_to_end_snr_db(uplink_range_m, downlink_range_m)
        if snr_db == -math.inf:
            return 0.0
        bandwidth = min(self.uplink.bandwidth_hz, self.downlink.bandwidth_hz)
        return achievable_rate_bps(snr_db, bandwidth)
