"""Link layer: RF budgets, channel capacity, and the bent-pipe relay model.

* :mod:`repro.links.budget` — link budgets (EIRP, path loss, G/T, C/N0).
* :mod:`repro.links.channel` — Shannon and DVB-S2-style MODCOD capacity.
* :mod:`repro.links.bentpipe` — the paper's transparent bent-pipe
  architecture: the satellite repeats the uplink waveform on the downlink
  without decoding, so end-to-end quality composes the two hops' noise.
* :mod:`repro.links.spectrum` — band plans and the ground-managed spectrum
  coordination the paper's §4 design delegates to terminals/stations.
* :mod:`repro.links.isl` — inter-satellite links and multi-hop relay (the
  §4 future-work extension, implemented so the trade-off is measurable).
* :mod:`repro.links.latency` — bent-pipe propagation latency, including the
  §2 LEO-vs-GEO comparison.
* :mod:`repro.links.fading` — rain attenuation (ITU-style power law) and
  fade margining; fades matter doubly for transparent pipes, which amplify
  uplink fades into the downlink.
"""

from repro.links.budget import LinkBudget, free_space_path_loss_db
from repro.links.bentpipe import BentPipeLink, TransparentTransponder
from repro.links.channel import shannon_capacity_bps, select_modcod, MODCOD_TABLE

__all__ = [
    "LinkBudget",
    "free_space_path_loss_db",
    "BentPipeLink",
    "TransparentTransponder",
    "shannon_capacity_bps",
    "select_modcod",
    "MODCOD_TABLE",
]
