"""Band plans and ground-managed spectrum coordination.

The paper's design "delegates spectrum management to ground stations and user
terminals since the satellite acts merely as a repeater (and will be designed
as compatible with primary satellite frequencies — X and Ka/Ku bands)" (§4).
This module models that delegation: a :class:`BandPlan` carves a band into
channels, and a :class:`SpectrumCoordinator` hands out non-conflicting
channel grants per (party, region) so co-located terminals of different
parties do not interfere through the shared repeater.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Primary satellite bands the paper names, as (low_hz, high_hz).
BANDS_HZ: Dict[str, Tuple[float, float]] = {
    "X": (8.0e9, 12.0e9),
    "Ku-uplink": (14.0e9, 14.5e9),
    "Ku-downlink": (10.7e9, 12.7e9),
    "Ka-uplink": (27.5e9, 30.0e9),
    "Ka-downlink": (17.7e9, 20.2e9),
}


@dataclass(frozen=True)
class Channel:
    """One frequency channel within a band plan."""

    index: int
    center_hz: float
    bandwidth_hz: float

    @property
    def low_hz(self) -> float:
        return self.center_hz - self.bandwidth_hz / 2.0

    @property
    def high_hz(self) -> float:
        return self.center_hz + self.bandwidth_hz / 2.0

    def overlaps(self, other: "Channel") -> bool:
        return self.low_hz < other.high_hz and other.low_hz < self.high_hz


@dataclass(frozen=True)
class BandPlan:
    """A band divided into equal channels with optional guard bands."""

    band: str
    channel_bandwidth_hz: float
    guard_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.band not in BANDS_HZ:
            raise ValueError(
                f"unknown band {self.band!r}; known: {sorted(BANDS_HZ)}"
            )
        if self.channel_bandwidth_hz <= 0.0:
            raise ValueError("channel bandwidth must be positive")
        if self.guard_hz < 0.0:
            raise ValueError("guard band must be non-negative")

    @property
    def channels(self) -> List[Channel]:
        low, high = BANDS_HZ[self.band]
        pitch = self.channel_bandwidth_hz + self.guard_hz
        count = int((high - low + self.guard_hz) // pitch)
        return [
            Channel(
                index=index,
                center_hz=low + pitch * index + self.channel_bandwidth_hz / 2.0,
                bandwidth_hz=self.channel_bandwidth_hz,
            )
            for index in range(count)
        ]


class SpectrumConflictError(RuntimeError):
    """Raised when no conflict-free channel is available in a region."""


@dataclass
class SpectrumCoordinator:
    """Grants channels to parties per region, avoiding co-channel conflicts.

    A *region* is an opaque key (e.g. a city name); two grants conflict when
    they share a region and their channels overlap.  This is deliberately a
    ground-side mechanism: nothing here touches the satellites, mirroring the
    transparent-repeater architecture.
    """

    plan: BandPlan
    _grants: Dict[str, Dict[int, str]] = field(default_factory=dict)

    def granted_channels(self, region: str) -> Dict[int, str]:
        """Map channel index -> party for a region."""
        return dict(self._grants.get(region, {}))

    def request(self, party: str, region: str) -> Channel:
        """Grant the lowest-index free channel in a region to a party.

        Raises:
            SpectrumConflictError: When the region's channels are exhausted.
        """
        taken = self._grants.setdefault(region, {})
        for channel in self.plan.channels:
            if channel.index not in taken:
                taken[channel.index] = party
                return channel
        raise SpectrumConflictError(
            f"no free channels in region {region!r} "
            f"(all {len(self.plan.channels)} granted)"
        )

    def release(self, party: str, region: str, channel_index: int) -> None:
        """Release a previously granted channel.

        Raises:
            KeyError: If the grant does not exist or belongs to another party.
        """
        taken = self._grants.get(region, {})
        if taken.get(channel_index) != party:
            raise KeyError(
                f"channel {channel_index} in {region!r} is not held by {party!r}"
            )
        del taken[channel_index]

    def utilization(self, region: str) -> float:
        """Fraction of the region's channels currently granted."""
        total = len(self.plan.channels)
        if total == 0:
            return 0.0
        return len(self._grants.get(region, {})) / total
