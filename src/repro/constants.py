"""Physical and astrodynamic constants used across the library.

All values follow WGS-84 / standard astrodynamics references (Vallado,
*Fundamentals of Astrodynamics and Applications*).  Units are SI unless the
name says otherwise.
"""

from __future__ import annotations

import math

#: Earth gravitational parameter, m^3 / s^2 (WGS-84).
MU_EARTH = 3.986004418e14

#: Mean equatorial Earth radius, meters (WGS-84).
EARTH_RADIUS_M = 6_378_137.0

#: Mean Earth radius used for spherical-Earth coverage geometry, meters.
EARTH_MEAN_RADIUS_M = 6_371_000.0

#: WGS-84 flattening.
EARTH_FLATTENING = 1.0 / 298.257223563

#: WGS-84 first eccentricity squared.
EARTH_ECC_SQ = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING)

#: Earth rotation rate, rad/s (sidereal).
EARTH_ROTATION_RATE = 7.292115e-5

#: J2 zonal harmonic coefficient of Earth's gravity field.
J2 = 1.08262668e-3

#: Seconds per sidereal day.
SIDEREAL_DAY_S = 86_164.0905

#: Seconds per solar day.
DAY_S = 86_400.0

#: Seconds per week.
WEEK_S = 7 * DAY_S

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380649e-23

#: Boltzmann constant expressed in dBW/(K*Hz).
BOLTZMANN_DBW = 10.0 * math.log10(BOLTZMANN)

#: Default minimum elevation mask for user terminals, degrees.  Starlink user
#: terminals operate with a 25 degree mask; the paper's CosmicBeats runs use
#: the same assumption.
DEFAULT_MIN_ELEVATION_DEG = 25.0

#: Default simulation time step, seconds.
DEFAULT_TIME_STEP_S = 60.0


def orbital_period_s(semi_major_axis_m: float) -> float:
    """Return the Keplerian orbital period for a semi-major axis in meters."""
    if semi_major_axis_m <= 0.0:
        raise ValueError(f"semi-major axis must be positive, got {semi_major_axis_m}")
    return 2.0 * math.pi * math.sqrt(semi_major_axis_m**3 / MU_EARTH)


def mean_motion_rad_s(semi_major_axis_m: float) -> float:
    """Return the Keplerian mean motion (rad/s) for a semi-major axis in meters."""
    if semi_major_axis_m <= 0.0:
        raise ValueError(f"semi-major axis must be positive, got {semi_major_axis_m}")
    return math.sqrt(MU_EARTH / semi_major_axis_m**3)


def semi_major_axis_from_period_s(period_s: float) -> float:
    """Return the semi-major axis (meters) for a Keplerian period in seconds."""
    if period_s <= 0.0:
        raise ValueError(f"period must be positive, got {period_s}")
    return (MU_EARTH * (period_s / (2.0 * math.pi)) ** 2) ** (1.0 / 3.0)
