"""Fig. 4c — inclination vs altitude vs phase when adding a satellite.

Paper methodology (§3.3): base of four Starlink-like satellites (53 degree
inclination, 546 km, spaced ~90 degrees apart in one plane); add one
satellite from three categories:

1. different inclination (43 degrees),
2. same plane and phase but different altitude,
3. same plane but different phase.

Paper anchors: the different-inclination addition gains the most (~1 h 11 m);
the other two categories still gain over 30 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.constellation.design import (
    altitude_variant,
    fig4c_base_constellation,
    inclination_variant,
    phase_variant,
)
from repro.core.placement import PlacementScorer
from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.ground.cities import CITIES
from repro.runner import RunContext, Scenario, run_scenario

#: Altitude used for category 2 (the paper does not state its value; 30 km
#: above the base keeps the satellite in the same regime while breaking the
#: period lock so it drifts in phase over the week).
DEFAULT_ALTITUDE_KM = 576.0

#: Phase offset used for category 3: the midpoint between two base
#: satellites that are 90 degrees apart (Fig. 4b showed midpoints win).
DEFAULT_PHASE_DEG = 45.0

_LABELS = ("inclination", "altitude", "phase")


@dataclass(frozen=True)
class Fig4cResult:
    gains_hours: Dict[str, float]
    config: ExperimentConfig

    def ranking(self) -> List[Tuple[str, float]]:
        return sorted(self.gains_hours.items(), key=lambda item: -item[1])


@dataclass
class Fig4cScenario(Scenario):
    """Deterministic category comparison: one point, one run, no pool."""

    inclination_deg: float = 43.0
    altitude_km: float = DEFAULT_ALTITUDE_KM
    phase_deg: float = DEFAULT_PHASE_DEG

    name = "fig4c"
    uses_pool = False

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[str]:
        return ["categories"]

    def runs_for(self, point: str, config: ExperimentConfig) -> int:
        return 1  # Deterministic: no Monte-Carlo repetition.

    def run_one(self, ctx: RunContext, run_index: int) -> List[float]:
        base = fig4c_base_constellation()
        reference = base[0].elements
        candidates = [
            inclination_variant(reference, self.inclination_deg),
            altitude_variant(reference, self.altitude_km),
            phase_variant(reference, self.phase_deg),
        ]
        scorer = PlacementScorer(
            base, ctx.config.grid(), cities=CITIES, context=ctx.context
        )
        scored = scorer.score(candidates)
        return [candidate.coverage_gain_hours for candidate in scored]

    def reduce(
        self,
        point: str,
        point_index: int,
        samples: List[List[float]],
        config: ExperimentConfig,
    ) -> Dict[str, float]:
        (gains,) = samples
        return dict(zip(_LABELS, gains))

    def finalize(
        self, reduced: List[Dict[str, float]], config: ExperimentConfig
    ) -> Fig4cResult:
        (gains_hours,) = reduced
        return Fig4cResult(gains_hours=gains_hours, config=config)


def run_fig4c(
    config: ExperimentConfig = ExperimentConfig(),
    inclination_deg: float = 43.0,
    altitude_km: float = DEFAULT_ALTITUDE_KM,
    phase_deg: float = DEFAULT_PHASE_DEG,
) -> Fig4cResult:
    """Run the Fig. 4c category comparison (see :class:`Fig4cScenario`)."""
    return run_scenario(
        Fig4cScenario(
            inclination_deg=inclination_deg,
            altitude_km=altitude_km,
            phase_deg=phase_deg,
        ),
        config,
    )
