"""Fig. 2 — percentage of time without coverage vs constellation size.

Paper methodology (§2): a receiver at a central location in Taipei; one
simulated week; in each run, randomly sample N satellites from the Starlink
network; report the mean percentage of time with no satellite visible.

Paper anchors: with 100 satellites the user has no coverage >50% of the time
with continuous gaps over an hour; >=1000 satellites reach 99.5% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.gaps import gap_timeline_events
from repro.experiments.common import (
    ALL_SITES,
    ExperimentConfig,
    ExperimentContext,
    TAIPEI_INDEX,
)
from repro.runner import RunContext, Scenario, run_scenario
from repro.sim.contacts import contact_events
from repro.sim.coverage import gap_lengths_s

#: Constellation sizes swept by default (the figure's x axis).
DEFAULT_SIZES: Sequence[int] = (1, 10, 50, 100, 200, 500, 1000, 2000)

#: Satellite tracks narrated onto the event timeline per swept size.  Only
#: the first Monte-Carlo run of each size is narrated, and only this many
#: of its visible satellites — enough to inspect a trace without flooding
#: the ring buffer across an 8-point sweep.
MAX_TRACED_SATELLITES = 8


@dataclass(frozen=True)
class Fig2Point:
    """One x-axis point of Fig. 2, aggregated over runs."""

    satellites: int
    mean_uncovered_percent: float
    std_uncovered_percent: float
    mean_max_gap_s: float
    max_max_gap_s: float


@dataclass(frozen=True)
class Fig2Result:
    points: List[Fig2Point]
    config: ExperimentConfig

    def uncovered_percent_series(self) -> List[Tuple[int, float]]:
        return [(p.satellites, p.mean_uncovered_percent) for p in self.points]


@dataclass
class Fig2Scenario(Scenario):
    """Taipei coverage vs sampled constellation size.

    Each run reduces the Taipei row of the shared packed-visibility tensor
    over a random satellite subset.  The first run of each size is also
    narrated onto the simulation timeline (coverage gaps at Taipei plus
    per-satellite contact windows for a bounded satellite subset), so
    ``--trace-out`` captures inspectable tracks from a figure run.
    """

    sizes: Sequence[int] = DEFAULT_SIZES

    name = "fig2"
    salt = 2

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        pool_size = len(context.pool())
        for size in self.sizes:
            if size > pool_size:
                raise ValueError(f"size {size} exceeds pool of {pool_size}")
        return list(self.sizes)

    def run_one(self, ctx: RunContext, run_index: int) -> Tuple[float, float]:
        visibility = ctx.visibility()
        indices = ctx.rng.choice(ctx.pool_size(), size=ctx.point, replace=False)
        mask = visibility.site_mask(TAIPEI_INDEX, indices)
        uncovered = 100.0 * (1.0 - mask.mean())
        gaps = gap_lengths_s(mask, ctx.config.grid().step_s)
        max_gap = float(gaps.max()) if gaps.size else 0.0
        if run_index == 0:
            _narrate_run(
                visibility, indices, mask, ctx.config.grid(),
                ctx.context.pool(ctx.pool_seed),
            )
        return (float(uncovered), max_gap)

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[Tuple[float, float]],
        config: ExperimentConfig,
    ) -> Fig2Point:
        uncovered = np.array([sample[0] for sample in samples])
        max_gaps = np.array([sample[1] for sample in samples])
        return Fig2Point(
            satellites=point,
            mean_uncovered_percent=float(uncovered.mean()),
            std_uncovered_percent=float(uncovered.std()),
            mean_max_gap_s=float(max_gaps.mean()),
            max_max_gap_s=float(max_gaps.max()),
        )

    def finalize(
        self, reduced: List[Fig2Point], config: ExperimentConfig
    ) -> Fig2Result:
        return Fig2Result(points=reduced, config=config)


def run_fig2(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig2Result:
    """Run the Fig. 2 sweep (see :class:`Fig2Scenario`)."""
    return run_scenario(Fig2Scenario(sizes=sizes), config)


def _narrate_run(visibility, indices, mask, grid, pool) -> None:
    """Emit timeline events describing one Monte-Carlo run.

    Gap open/close events come from the union Taipei mask; contact windows
    come from the first :data:`MAX_TRACED_SATELLITES` satellites of the
    sampled subset that are ever visible from Taipei.
    """
    site_name = ALL_SITES[TAIPEI_INDEX].name
    gap_timeline_events(mask, grid.step_s, site=site_name)
    sat_masks = visibility.satellite_masks(indices, [TAIPEI_INDEX])
    active = np.flatnonzero(sat_masks.any(axis=1))[:MAX_TRACED_SATELLITES]
    if active.size == 0:
        return
    sat_ids = [pool[int(indices[row])].sat_id for row in active]
    contact_events(sat_masks[active][None, :, :], [site_name], sat_ids, grid)
