"""Fig. 2 — percentage of time without coverage vs constellation size.

Paper methodology (§2): a receiver at a central location in Taipei; one
simulated week; in each run, randomly sample N satellites from the Starlink
network; report the mean percentage of time with no satellite visible.

Paper anchors: with 100 satellites the user has no coverage >50% of the time
with continuous gaps over an hour; >=1000 satellites reach 99.5% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.gaps import gap_timeline_events, gap_timeline_events_from_intervals
from repro.experiments.common import (
    ALL_SITES,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
    TAIPEI_INDEX,
)
from repro.runner import RunContext, Scenario, run_scenario
from repro.sim.contacts import contact_events, contact_events_from_intervals
from repro.sim.coverage import gap_lengths_s
from repro.sim.intervals import ContactIntervals

#: Constellation sizes swept by default (the figure's x axis).
DEFAULT_SIZES: Sequence[int] = (1, 10, 50, 100, 200, 500, 1000, 2000)

#: Satellite tracks narrated onto the event timeline per swept size.  Only
#: the first Monte-Carlo run of each size is narrated, and only this many
#: of its visible satellites — enough to inspect a trace without flooding
#: the ring buffer across an 8-point sweep.
MAX_TRACED_SATELLITES = 8


@dataclass(frozen=True)
class Fig2Point:
    """One x-axis point of Fig. 2, aggregated over runs."""

    satellites: int
    mean_uncovered_percent: float
    std_uncovered_percent: float
    mean_max_gap_s: float
    max_max_gap_s: float


@dataclass(frozen=True)
class Fig2Result:
    points: List[Fig2Point]
    config: ExperimentConfig

    def uncovered_percent_series(self) -> List[Tuple[int, float]]:
        return [(p.satellites, p.mean_uncovered_percent) for p in self.points]


@dataclass
class Fig2Scenario(Scenario):
    """Taipei coverage vs sampled constellation size.

    Each run reduces the Taipei row of the shared packed-visibility tensor
    over a random satellite subset.  The first run of each size is also
    narrated onto the simulation timeline (coverage gaps at Taipei plus
    per-satellite contact windows for a bounded satellite subset), so
    ``--trace-out`` captures inspectable tracks from a figure run.
    """

    sizes: Sequence[int] = DEFAULT_SIZES

    name = "fig2"
    salt = 2

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        pool_size = len(context.pool())
        for size in self.sizes:
            if size > pool_size:
                raise ValueError(f"size {size} exceeds pool of {pool_size}")
        return list(self.sizes)

    def run_one(self, ctx: RunContext, run_index: int) -> Tuple[float, float]:
        # The subset draw happens before any engine branch, so both
        # engines evaluate identical satellite samples.
        indices = ctx.rng.choice(ctx.pool_size(), size=ctx.point, replace=False)
        if ctx.engine == ENGINE_INTERVALS:
            contacts = ctx.contacts()
            union = contacts.site_union(TAIPEI_INDEX, indices)
            uncovered = 100.0 * (1.0 - union.coverage_fraction)
            gaps = union.gap_lengths_s()
            max_gap = float(gaps.max()) if gaps.size else 0.0
            if run_index == 0:
                _narrate_run_intervals(
                    contacts, indices, union, ctx.context.pool(ctx.pool_seed)
                )
            return (float(uncovered), max_gap)
        visibility = ctx.visibility()
        mask = visibility.site_mask(TAIPEI_INDEX, indices)
        uncovered = 100.0 * (1.0 - mask.mean())
        gaps = gap_lengths_s(mask, ctx.config.grid().step_s)
        max_gap = float(gaps.max()) if gaps.size else 0.0
        if run_index == 0:
            _narrate_run(
                visibility, indices, mask, ctx.config.grid(),
                ctx.context.pool(ctx.pool_seed),
            )
        return (float(uncovered), max_gap)

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[Tuple[float, float]],
        config: ExperimentConfig,
    ) -> Fig2Point:
        uncovered = np.array([sample[0] for sample in samples])
        max_gaps = np.array([sample[1] for sample in samples])
        return Fig2Point(
            satellites=point,
            mean_uncovered_percent=float(uncovered.mean()),
            std_uncovered_percent=float(uncovered.std()),
            mean_max_gap_s=float(max_gaps.mean()),
            max_max_gap_s=float(max_gaps.max()),
        )

    def finalize(
        self, reduced: List[Fig2Point], config: ExperimentConfig
    ) -> Fig2Result:
        return Fig2Result(points=reduced, config=config)


def run_fig2(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Fig2Result:
    """Run the Fig. 2 sweep (see :class:`Fig2Scenario`)."""
    return run_scenario(Fig2Scenario(sizes=sizes), config)


def _narrate_run(visibility, indices, mask, grid, pool) -> None:
    """Emit timeline events describing one Monte-Carlo run.

    Gap open/close events come from the union Taipei mask; contact windows
    come from the first :data:`MAX_TRACED_SATELLITES` satellites of the
    sampled subset that are ever visible from Taipei.
    """
    site_name = ALL_SITES[TAIPEI_INDEX].name
    gap_timeline_events(mask, grid.step_s, site=site_name)
    sat_masks = visibility.satellite_masks(indices, [TAIPEI_INDEX])
    active = np.flatnonzero(sat_masks.any(axis=1))[:MAX_TRACED_SATELLITES]
    if active.size == 0:
        return
    sat_ids = [pool[int(indices[row])].sat_id for row in active]
    contact_events(sat_masks[active][None, :, :], [site_name], sat_ids, grid)


def _narrate_run_intervals(
    contacts: ContactIntervals, indices, union, pool
) -> None:
    """Intervals-engine narration: same events, analytic edge times."""
    site_name = ALL_SITES[TAIPEI_INDEX].name
    gap_timeline_events_from_intervals(union, site=site_name)
    traced: List[int] = []
    for sat in indices:
        if contacts.pair_count(TAIPEI_INDEX, int(sat)):
            traced.append(int(sat))
            if len(traced) == MAX_TRACED_SATELLITES:
                break
    if not traced:
        return
    sub = contacts  # full-pool container; select the traced pairs directly
    contact_events_from_intervals_subset(sub, traced, site_name, pool)


def contact_events_from_intervals_subset(
    contacts: ContactIntervals, sat_indices, site_name: str, pool
) -> None:
    """Narrate the traced satellites' Taipei windows onto the timeline."""
    from repro.sim.events import ContactEvent
    from repro.sim.contacts import _narrate_events

    events = []
    for sat in sat_indices:
        rises, falls, t_start, t_end = contacts.pair_windows(TAIPEI_INDEX, sat)
        sat_id = pool[int(sat)].sat_id
        events.extend(
            ContactEvent(
                site_name, sat_id, float(rise), float(fall),
                truncated=bool(ts or te),
            )
            for rise, fall, ts, te in zip(rises, falls, t_start, t_end)
        )
    events.sort(key=lambda event: (event.start_s, event.site_name, event.sat_id))
    _narrate_events(events)
