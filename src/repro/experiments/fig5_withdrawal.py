"""Fig. 5 — coverage loss when half of a constellation denies service.

Paper methodology (§3.4): start from a base of L satellites (L in
{200, 500, 1000, 2000}); withdraw a random L/2 of them; report the reduction
in (population-weighted) coverage over one week, averaged over runs.

Paper anchors: L=200 loses 24.17% of coverage time (1 day 16 hours);
L=2000 loses only 0.37% — robustness grows with constellation size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentContext,
    weighted_city_coverage,
)
from repro.runner import RunContext, Scenario, run_scenario

DEFAULT_SIZES: Sequence[int] = (200, 500, 1000, 2000)


@dataclass(frozen=True)
class Fig5Point:
    satellites: int
    mean_reduction_percent: float
    std_reduction_percent: float
    mean_lost_hours: float


@dataclass(frozen=True)
class Fig5Result:
    points: List[Fig5Point]
    config: ExperimentConfig

    def reduction_series(self) -> List[Tuple[int, float]]:
        return [(p.satellites, p.mean_reduction_percent) for p in self.points]


@dataclass
class Fig5Scenario(Scenario):
    """Coverage reduction when a random fraction of a base withdraws."""

    sizes: Sequence[int] = DEFAULT_SIZES
    withdraw_fraction: float = 0.5

    name = "fig5"
    salt = 5

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        if not 0.0 < self.withdraw_fraction < 1.0:
            raise ValueError(
                f"withdraw fraction must be in (0, 1), got {self.withdraw_fraction}"
            )
        pool_size = len(context.pool())
        for size in self.sizes:
            if size > pool_size:
                raise ValueError(f"size {size} exceeds pool of {pool_size}")
        return list(self.sizes)

    def run_one(self, ctx: RunContext, run_index: int) -> float:
        query = ctx.subset_query()

        def coverage(indices: np.ndarray) -> float:
            return weighted_city_coverage(query, indices)

        withdraw = int(round(self.withdraw_fraction * ctx.point))
        base = ctx.rng.choice(ctx.pool_size(), size=ctx.point, replace=False)
        kept = ctx.rng.permutation(base)[withdraw:]
        return float(coverage(base) - coverage(kept))

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[float],
        config: ExperimentConfig,
    ) -> Fig5Point:
        reductions = np.array(samples)
        horizon_hours = config.grid().duration_s / 3600.0
        return Fig5Point(
            satellites=point,
            mean_reduction_percent=float(100.0 * reductions.mean()),
            std_reduction_percent=float(100.0 * reductions.std()),
            mean_lost_hours=float(reductions.mean() * horizon_hours),
        )

    def finalize(
        self, reduced: List[Fig5Point], config: ExperimentConfig
    ) -> Fig5Result:
        return Fig5Result(points=reduced, config=config)


def run_fig5(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: Sequence[int] = DEFAULT_SIZES,
    withdraw_fraction: float = 0.5,
) -> Fig5Result:
    """Run the Fig. 5 sweep (see :class:`Fig5Scenario`)."""
    return run_scenario(
        Fig5Scenario(sizes=sizes, withdraw_fraction=withdraw_fraction), config
    )
