"""Fig. 5 — coverage loss when half of a constellation denies service.

Paper methodology (§3.4): start from a base of L satellites (L in
{200, 500, 1000, 2000}); withdraw a random L/2 of them; report the reduction
in (population-weighted) coverage over one week, averaged over runs.

Paper anchors: L=200 loses 24.17% of coverage time (1 day 16 hours);
L=2000 loses only 0.37% — robustness grows with constellation size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    pool_visibility,
    starlink_pool,
    weighted_city_coverage_fraction,
)
from repro.obs.trace import span

DEFAULT_SIZES: Sequence[int] = (200, 500, 1000, 2000)


@dataclass(frozen=True)
class Fig5Point:
    satellites: int
    mean_reduction_percent: float
    std_reduction_percent: float
    mean_lost_hours: float


@dataclass(frozen=True)
class Fig5Result:
    points: List[Fig5Point]
    config: ExperimentConfig

    def reduction_series(self) -> List[Tuple[int, float]]:
        return [(p.satellites, p.mean_reduction_percent) for p in self.points]


def run_fig5(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: Sequence[int] = DEFAULT_SIZES,
    withdraw_fraction: float = 0.5,
) -> Fig5Result:
    """Run the Fig. 5 sweep over the shared visibility pool."""
    if not 0.0 < withdraw_fraction < 1.0:
        raise ValueError(
            f"withdraw fraction must be in (0, 1), got {withdraw_fraction}"
        )
    visibility = pool_visibility(config)
    pool_size = len(starlink_pool())
    rng = config.rng(salt=5)
    horizon_hours = config.grid().duration_s / 3600.0

    points: List[Fig5Point] = []
    with span("analysis.fig5"):
        for size in sizes:
            if size > pool_size:
                raise ValueError(f"size {size} exceeds pool of {pool_size}")
            withdraw = int(round(withdraw_fraction * size))
            reductions = np.empty(config.runs)
            for run in range(config.runs):
                base = rng.choice(pool_size, size=size, replace=False)
                kept = rng.permutation(base)[withdraw:]
                before = weighted_city_coverage_fraction(visibility, base)
                after = weighted_city_coverage_fraction(visibility, kept)
                reductions[run] = before - after
            points.append(
                Fig5Point(
                    satellites=size,
                    mean_reduction_percent=float(100.0 * reductions.mean()),
                    std_reduction_percent=float(100.0 * reductions.std()),
                    mean_lost_hours=float(reductions.mean() * horizon_hours),
                )
            )
    return Fig5Result(points=points, config=config)
