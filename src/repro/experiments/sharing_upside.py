"""§2 claim — "a participant contributing just 50 satellites can get
coverage worth over 1000 satellites by trading off their spare capacities".

Methodology: calibrate a go-it-alone curve (weighted city coverage vs own
constellation size), then compare a party's coverage alone (its 50
satellites) against what it experiences inside a shared MP-LEO constellation
(every member's satellites).  The "worth" is the go-it-alone size whose
coverage matches the shared experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.sharing import SharingUpside, sharing_upside
from repro.experiments.common import (
    ExperimentConfig,
    pool_visibility,
    starlink_pool,
    weighted_city_coverage_fraction,
)
from repro.obs.trace import span

DEFAULT_CALIBRATION_SIZES: Sequence[int] = (
    10, 25, 50, 100, 200, 400, 700, 1000, 1500, 2000, 3000, 4000,
)


@dataclass(frozen=True)
class SharingUpsideResult:
    upside: SharingUpside
    calibration: List[Tuple[int, float]]
    config: ExperimentConfig


def run_sharing_upside(
    config: ExperimentConfig = ExperimentConfig(),
    contributed: int = 50,
    network_size: int = 1000,
    calibration_sizes: Sequence[int] = DEFAULT_CALIBRATION_SIZES,
) -> SharingUpsideResult:
    """Measure the §2 sharing upside for one representative party.

    Args:
        contributed: Satellites the party brings (the paper's 50).
        network_size: Total MP-LEO constellation size it joins (the paper's
            benchmark of 1000-satellite coverage).
        calibration_sizes: Go-it-alone sizes for the worth curve.
    """
    if not 0 < contributed <= network_size:
        raise ValueError(
            f"contributed ({contributed}) must be in (0, network_size]"
        )
    visibility = pool_visibility(config)
    pool_size = len(starlink_pool())
    rng = config.rng(salt=7)

    with span("analysis.sharing"):
        # Go-it-alone calibration curve, averaged over runs.
        calibration: List[Tuple[int, float]] = []
        for size in calibration_sizes:
            fractions = np.empty(config.runs)
            for run in range(config.runs):
                indices = rng.choice(pool_size, size=size, replace=False)
                fractions[run] = weighted_city_coverage_fraction(visibility, indices)
            calibration.append((size, float(fractions.mean())))

        # The shared network and the party's slice of it.
        alone_fractions = np.empty(config.runs)
        shared_fractions = np.empty(config.runs)
        for run in range(config.runs):
            network = rng.choice(pool_size, size=network_size, replace=False)
            own = network[:contributed]
            alone_fractions[run] = weighted_city_coverage_fraction(visibility, own)
            shared_fractions[run] = weighted_city_coverage_fraction(
                visibility, network
            )

    upside = sharing_upside(
        party="participant",
        contributed=contributed,
        alone_coverage_fraction=float(alone_fractions.mean()),
        shared_coverage_fraction=float(shared_fractions.mean()),
        coverage_by_count=calibration,
    )
    return SharingUpsideResult(
        upside=upside, calibration=calibration, config=config
    )
