"""§2 claim — "a participant contributing just 50 satellites can get
coverage worth over 1000 satellites by trading off their spare capacities".

Methodology: calibrate a go-it-alone curve (weighted city coverage vs own
constellation size), then compare a party's coverage alone (its 50
satellites) against what it experiences inside a shared MP-LEO constellation
(every member's satellites).  The "worth" is the go-it-alone size whose
coverage matches the shared experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

import numpy as np

from repro.core.sharing import SharingUpside, sharing_upside
from repro.experiments.common import (
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
    weighted_city_coverage_fraction,
    weighted_city_coverage_from_intervals,
)
from repro.runner import RunContext, Scenario, run_scenario

DEFAULT_CALIBRATION_SIZES: Sequence[int] = (
    10, 25, 50, 100, 200, 400, 700, 1000, 1500, 2000, 3000, 4000,
)

#: The sweep-axis sentinel for the shared-network evaluation point (the
#: calibration points are plain ints).
NETWORK_POINT = "network"


@dataclass(frozen=True)
class SharingUpsideResult:
    upside: SharingUpside
    calibration: List[Tuple[int, float]]
    config: ExperimentConfig


@dataclass
class SharingUpsideScenario(Scenario):
    """The §2 sharing-upside measurement for one representative party.

    The sweep axis is the go-it-alone calibration sizes plus one final
    :data:`NETWORK_POINT` where the shared constellation and the party's
    own slice of it are evaluated together.
    """

    contributed: int = 50
    network_size: int = 1000
    calibration_sizes: Sequence[int] = DEFAULT_CALIBRATION_SIZES

    name = "sharing"
    salt = 7

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[Union[int, str]]:
        if not 0 < self.contributed <= self.network_size:
            raise ValueError(
                f"contributed ({self.contributed}) must be in (0, network_size]"
            )
        pool_size = len(context.pool())
        for size in (*self.calibration_sizes, self.network_size):
            if size > pool_size:
                raise ValueError(f"size {size} exceeds pool of {pool_size}")
        return [*self.calibration_sizes, NETWORK_POINT]

    def run_one(self, ctx: RunContext, run_index: int) -> Any:
        if ctx.engine == ENGINE_INTERVALS:
            contacts = ctx.contacts()

            def coverage(indices: np.ndarray) -> float:
                return float(
                    weighted_city_coverage_from_intervals(contacts, indices)
                )
        else:
            visibility = ctx.visibility()

            def coverage(indices: np.ndarray) -> float:
                return float(
                    weighted_city_coverage_fraction(visibility, indices)
                )

        if ctx.point == NETWORK_POINT:
            network = ctx.rng.choice(
                ctx.pool_size(), size=self.network_size, replace=False
            )
            own = network[: self.contributed]
            return (coverage(own), coverage(network))
        indices = ctx.rng.choice(ctx.pool_size(), size=ctx.point, replace=False)
        return coverage(indices)

    def reduce(
        self,
        point: Union[int, str],
        point_index: int,
        samples: List[Any],
        config: ExperimentConfig,
    ) -> Any:
        if point == NETWORK_POINT:
            alone = np.array([sample[0] for sample in samples])
            shared = np.array([sample[1] for sample in samples])
            return (float(alone.mean()), float(shared.mean()))
        return (point, float(np.mean(samples)))

    def finalize(
        self, reduced: List[Any], config: ExperimentConfig
    ) -> SharingUpsideResult:
        calibration = reduced[:-1]
        alone_mean, shared_mean = reduced[-1]
        upside = sharing_upside(
            party="participant",
            contributed=self.contributed,
            alone_coverage_fraction=alone_mean,
            shared_coverage_fraction=shared_mean,
            coverage_by_count=calibration,
        )
        return SharingUpsideResult(
            upside=upside, calibration=calibration, config=config
        )


def run_sharing_upside(
    config: ExperimentConfig = ExperimentConfig(),
    contributed: int = 50,
    network_size: int = 1000,
    calibration_sizes: Sequence[int] = DEFAULT_CALIBRATION_SIZES,
) -> SharingUpsideResult:
    """Measure the §2 sharing upside (see :class:`SharingUpsideScenario`).

    Args:
        contributed: Satellites the party brings (the paper's 50).
        network_size: Total MP-LEO constellation size it joins (the paper's
            benchmark of 1000-satellite coverage).
        calibration_sizes: Go-it-alone sizes for the worth curve.
    """
    return run_scenario(
        SharingUpsideScenario(
            contributed=contributed,
            network_size=network_size,
            calibration_sizes=calibration_sizes,
        ),
        config,
    )
