"""Experiment harness: one module per paper figure.

Each module encapsulates the exact methodology of the corresponding figure
in *A Call for Decentralized Satellite Networks* (HotNets '24) as a
:class:`repro.runner.Scenario` — a sweep axis, a pure per-run kernel, and a
reduction — executed by the unified :class:`repro.runner.MonteCarloRunner`
(serial or ``--parallel N``).  Each module keeps a thin ``run_figN()``
entry point returning the structured result the benchmark suite prints as
paper-style rows.

* :mod:`repro.experiments.common` — ExperimentConfig + ExperimentContext
  (pool/visibility caches).
* :mod:`repro.experiments.fig2_coverage_vs_size` — Fig. 2.
* :mod:`repro.experiments.fig3_idle_vs_cities` — Fig. 3.
* :mod:`repro.experiments.fig4a_single_addition` — Fig. 4a.
* :mod:`repro.experiments.fig4b_phase_sweep` — Fig. 4b.
* :mod:`repro.experiments.fig4c_design_factors` — Fig. 4c.
* :mod:`repro.experiments.fig5_withdrawal` — Fig. 5.
* :mod:`repro.experiments.fig6_party_skew` — Fig. 6.
* :mod:`repro.experiments.sharing_upside` — the §2 sharing-upside claim.
"""

from repro.experiments.common import ExperimentConfig, ExperimentContext

__all__ = ["ExperimentConfig", "ExperimentContext"]
