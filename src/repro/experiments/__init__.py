"""Experiment harness: one module per paper figure.

Each module encapsulates the exact methodology of the corresponding figure
in *A Call for Decentralized Satellite Networks* (HotNets '24) and returns a
structured result that the benchmark suite prints as paper-style rows.

* :mod:`repro.experiments.common` — shared pool/visibility caches & config.
* :mod:`repro.experiments.fig2_coverage_vs_size` — Fig. 2.
* :mod:`repro.experiments.fig3_idle_vs_cities` — Fig. 3.
* :mod:`repro.experiments.fig4a_single_addition` — Fig. 4a.
* :mod:`repro.experiments.fig4b_phase_sweep` — Fig. 4b.
* :mod:`repro.experiments.fig4c_design_factors` — Fig. 4c.
* :mod:`repro.experiments.fig5_withdrawal` — Fig. 5.
* :mod:`repro.experiments.fig6_party_skew` — Fig. 6.
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
