"""Fig. 6 — coverage loss when the largest party exits, vs contribution skew.

Paper methodology (§3.4): a 1000-satellite constellation shared by 11
parties with contribution ratios from equal (1:1:...:1) to highly skewed
(10:1:...:1); in each run the largest party withdraws its satellites; report
the reduction in coverage.

Paper anchors: equal contributions (91 satellites each) minimize the loss;
at 10:1 skew (one party holding 500 satellites) the loss is ~5.5% of the
week (10 hours of no coverage) — pronounced but still service-able.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.party import contribution_ratio_split
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentContext,
    weighted_city_coverage,
)
from repro.runner import RunContext, Scenario, run_scenario

DEFAULT_SKEWS: Sequence[int] = tuple(range(1, 11))
DEFAULT_PARTIES = 11
DEFAULT_TOTAL = 1000


@dataclass(frozen=True)
class Fig6Point:
    skew: int  # Largest party's ratio (1 = equal ... 10 = 10:1:...:1).
    largest_party_satellites: int
    mean_reduction_percent: float
    std_reduction_percent: float
    mean_lost_hours: float


@dataclass(frozen=True)
class Fig6Result:
    points: List[Fig6Point]
    config: ExperimentConfig

    def reduction_series(self) -> List[Tuple[int, float]]:
        return [(p.skew, p.mean_reduction_percent) for p in self.points]


@dataclass
class Fig6Scenario(Scenario):
    """Largest-party withdrawal loss vs contribution skew.

    Satellites are randomly attributed to parties per run, so the largest
    party's holdings are a random ``counts[0]``-subset — exactly the paper's
    random-attribution model.
    """

    skews: Sequence[int] = DEFAULT_SKEWS
    parties: int = DEFAULT_PARTIES
    total_satellites: int = DEFAULT_TOTAL

    name = "fig6"
    salt = 6

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        pool_size = len(context.pool())
        if self.total_satellites > pool_size:
            raise ValueError(
                f"total {self.total_satellites} exceeds pool of {pool_size}"
            )
        return list(self.skews)

    def _largest_party_count(self, skew: int) -> int:
        ratios = [float(skew)] + [1.0] * (self.parties - 1)
        return contribution_ratio_split(self.total_satellites, ratios)[0]

    def run_one(self, ctx: RunContext, run_index: int) -> float:
        query = ctx.subset_query()

        def coverage(indices: np.ndarray) -> float:
            return weighted_city_coverage(query, indices)

        largest = self._largest_party_count(ctx.point)
        base = ctx.rng.choice(
            ctx.pool_size(), size=self.total_satellites, replace=False
        )
        # The first `largest` positions of a random permutation are the
        # largest party's satellites; the rest stay.
        shuffled = ctx.rng.permutation(base)
        kept = shuffled[largest:]
        return float(coverage(base) - coverage(kept))

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[float],
        config: ExperimentConfig,
    ) -> Fig6Point:
        reductions = np.array(samples)
        horizon_hours = config.grid().duration_s / 3600.0
        return Fig6Point(
            skew=point,
            largest_party_satellites=self._largest_party_count(point),
            mean_reduction_percent=float(100.0 * reductions.mean()),
            std_reduction_percent=float(100.0 * reductions.std()),
            mean_lost_hours=float(reductions.mean() * horizon_hours),
        )

    def finalize(
        self, reduced: List[Fig6Point], config: ExperimentConfig
    ) -> Fig6Result:
        return Fig6Result(points=reduced, config=config)


def run_fig6(
    config: ExperimentConfig = ExperimentConfig(),
    skews: Sequence[int] = DEFAULT_SKEWS,
    parties: int = DEFAULT_PARTIES,
    total_satellites: int = DEFAULT_TOTAL,
) -> Fig6Result:
    """Run the Fig. 6 sweep (see :class:`Fig6Scenario`)."""
    return run_scenario(
        Fig6Scenario(
            skews=skews, parties=parties, total_satellites=total_satellites
        ),
        config,
    )
