"""Fig. 6 — coverage loss when the largest party exits, vs contribution skew.

Paper methodology (§3.4): a 1000-satellite constellation shared by 11
parties with contribution ratios from equal (1:1:...:1) to highly skewed
(10:1:...:1); in each run the largest party withdraws its satellites; report
the reduction in coverage.

Paper anchors: equal contributions (91 satellites each) minimize the loss;
at 10:1 skew (one party holding 500 satellites) the loss is ~5.5% of the
week (10 hours of no coverage) — pronounced but still service-able.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.party import contribution_ratio_split
from repro.experiments.common import (
    ExperimentConfig,
    pool_visibility,
    starlink_pool,
    weighted_city_coverage_fraction,
)
from repro.obs.trace import span

DEFAULT_SKEWS: Sequence[int] = tuple(range(1, 11))
DEFAULT_PARTIES = 11
DEFAULT_TOTAL = 1000


@dataclass(frozen=True)
class Fig6Point:
    skew: int  # Largest party's ratio (1 = equal ... 10 = 10:1:...:1).
    largest_party_satellites: int
    mean_reduction_percent: float
    std_reduction_percent: float
    mean_lost_hours: float


@dataclass(frozen=True)
class Fig6Result:
    points: List[Fig6Point]
    config: ExperimentConfig

    def reduction_series(self) -> List[Tuple[int, float]]:
        return [(p.skew, p.mean_reduction_percent) for p in self.points]


def run_fig6(
    config: ExperimentConfig = ExperimentConfig(),
    skews: Sequence[int] = DEFAULT_SKEWS,
    parties: int = DEFAULT_PARTIES,
    total_satellites: int = DEFAULT_TOTAL,
) -> Fig6Result:
    """Run the Fig. 6 sweep over the shared visibility pool.

    Satellites are randomly attributed to parties per run, so the largest
    party's holdings are a random ``counts[0]``-subset — exactly the paper's
    random-attribution model.
    """
    visibility = pool_visibility(config)
    pool_size = len(starlink_pool())
    if total_satellites > pool_size:
        raise ValueError(
            f"total {total_satellites} exceeds pool of {pool_size}"
        )
    rng = config.rng(salt=6)
    horizon_hours = config.grid().duration_s / 3600.0

    points: List[Fig6Point] = []
    with span("analysis.fig6"):
        for skew in skews:
            ratios = [float(skew)] + [1.0] * (parties - 1)
            counts = contribution_ratio_split(total_satellites, ratios)
            largest = counts[0]
            reductions = np.empty(config.runs)
            for run in range(config.runs):
                base = rng.choice(pool_size, size=total_satellites, replace=False)
                # The first `largest` positions of a random permutation are
                # the largest party's satellites; the rest stay.
                shuffled = rng.permutation(base)
                kept = shuffled[largest:]
                before = weighted_city_coverage_fraction(visibility, base)
                after = weighted_city_coverage_fraction(visibility, kept)
                reductions[run] = before - after
            points.append(
                Fig6Point(
                    skew=skew,
                    largest_party_satellites=largest,
                    mean_reduction_percent=float(100.0 * reductions.mean()),
                    std_reduction_percent=float(100.0 * reductions.std()),
                    mean_lost_hours=float(reductions.mean() * horizon_hours),
                )
            )
    return Fig6Result(points=points, config=config)
