"""Shared experiment infrastructure.

The Monte-Carlo experiments all sample from the same synthetic Starlink-like
pool and evaluate coverage at the same sites (the 21 cities and/or Taipei),
so the expensive artifacts — the pool and its packed visibility tensor — are
owned by an :class:`ExperimentContext` and built once per configuration.

A context is an explicit object with an explicit lifetime: the unified
runner (:mod:`repro.runner`) threads one through every scenario kernel, a
parallel worker process holds its own (with the visibility tensor attached
from shared memory instead of rebuilt), and tests can create throwaway
contexts that never touch each other.  The module-level helpers
(:func:`starlink_pool`, :func:`pool_visibility`, :func:`clear_caches`)
delegate to one process-default context so existing call sites keep
working.

Cache traffic and build time are accounted through :mod:`repro.obs`
(counters ``experiments.visibility_cache.*`` / ``experiments.pool_cache.*``
and the ``visibility.build`` span).
"""

from __future__ import annotations

import atexit
import time
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG, WEEK_S
from repro.constellation.satellite import Constellation
from repro.constellation.shells import starlink_like_constellation
from repro.ground.cities import CITIES, TAIPEI, population_weights
from repro.ground.sites import GroundSite
from repro.obs import get_logger, metrics
from repro.obs.trace import span
from repro.orbits.propagator import BatchPropagator
from repro.sim.clock import TimeGrid
from repro.sim.intervals import ContactIntervals, find_contact_intervals
from repro.sim.kernels import SiteGeometry
from repro.sim.visibility import PackedVisibility, packed_visibility

_LOG = get_logger(__name__)

_POOL_HITS = metrics.counter("experiments.pool_cache.hits")
_POOL_MISSES = metrics.counter("experiments.pool_cache.misses")
_POOL_EVICTIONS = metrics.counter("experiments.pool_cache.evictions")
_VIS_HITS = metrics.counter("experiments.visibility_cache.hits")
_VIS_MISSES = metrics.counter("experiments.visibility_cache.misses")
_VIS_EVICTIONS = metrics.counter("experiments.visibility_cache.evictions")
_VIS_BUILD_SECONDS = metrics.histogram("experiments.visibility_cache.build_seconds")
_VIS_LAST_BUILD = metrics.gauge("experiments.visibility_cache.last_build_s")
_GEO_HITS = metrics.counter("experiments.geometry_cache.hits")
_GEO_MISSES = metrics.counter("experiments.geometry_cache.misses")
_GEO_EVICTIONS = metrics.counter("experiments.geometry_cache.evictions")
_INT_HITS = metrics.counter("experiments.interval_cache.hits")
_INT_MISSES = metrics.counter("experiments.interval_cache.misses")
_INT_EVICTIONS = metrics.counter("experiments.interval_cache.evictions")
_INT_BUILD_SECONDS = metrics.histogram("experiments.interval_cache.build_seconds")
_INT_LAST_BUILD = metrics.gauge("experiments.interval_cache.last_build_s")
_SUBSET_HITS = metrics.counter("experiments.subset_cache.hits")
_SUBSET_MISSES = metrics.counter("experiments.subset_cache.misses")

#: Contact-evaluation engines a context can run experiments on.
ENGINE_GRID = "grid"
ENGINE_INTERVALS = "intervals"
ENGINES = (ENGINE_GRID, ENGINE_INTERVALS)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every figure experiment.

    The paper runs 100 Monte-Carlo repetitions of each experiment at an
    unstated time step; the defaults here (20 runs, 120 s) keep a full
    benchmark pass in minutes on a laptop while leaving the statistics
    stable (means move by well under the figure-level differences).
    EXPERIMENTS.md records the configuration used for the reported numbers.

    ``parallel`` is the Monte-Carlo worker count (the CLI's ``--parallel``):
    1 means run in-process; N > 1 fans runs out over a process pool.  It is
    an *execution* knob, not a statistical one — per-run seeds are derived
    order-independently (see :mod:`repro.runner.scenario`), so results are
    identical for every value of ``parallel``.
    """

    runs: int = 20
    step_s: float = 120.0
    seed: int = 2024
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG
    duration_s: float = WEEK_S  # The paper's horizon: one simulated week.
    parallel: int = 1

    def grid(self) -> TimeGrid:
        return TimeGrid(duration_s=self.duration_s, step_s=self.step_s)

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)


#: All experiment sites: index 0 is Taipei (Fig. 2), 1..21 are the cities.
ALL_SITES = (TAIPEI,) + tuple(CITIES)
TAIPEI_INDEX = 0
CITY_INDICES = tuple(range(1, len(ALL_SITES)))

#: Cache key of one packed visibility tensor — every config field the tensor
#: depends on: pool seed, step, elevation mask, AND horizon.  Omitting the
#: horizon aliased differently sized grids onto one entry the moment
#: ``duration_s`` became configurable.
VisibilityKey = Tuple[int, float, float, float]


def visibility_cache_key(
    config: ExperimentConfig, pool_seed: int = 0
) -> VisibilityKey:
    """The exact-match key a config's visibility tensor is cached under."""
    return (pool_seed, config.step_s, config.min_elevation_deg, config.duration_s)


class ExperimentContext:
    """Owns the expensive experiment artifacts: pools + visibility tensors.

    One context is one cache domain.  The process-default context (module
    helpers below) serves the CLI and the benchmark suite; the parallel
    runner gives each worker process its own context with the shared-memory
    visibility tensor pre-installed; tests create throwaway contexts to
    keep cache state out of each other's way.

    Not thread-safe: experiments drive a context from one thread (or one
    process) at a time.

    Args:
        chunk_size: Streaming chunk (time samples per slab) for visibility
            builds owned by this context; None uses
            :data:`repro.sim.kernels.DEFAULT_STREAM_CHUNK`.  An execution
            knob like ``parallel``: results are chunk-invariant, only peak
            memory changes (the CLI's ``--chunk-size`` sets it on the
            default context).
        engine: Which contact representation scenario kernels reduce
            over: ``"grid"`` (the packed dense tensor, default) or
            ``"intervals"`` (analytic rise/set windows).  A context-level
            execution knob like ``chunk_size`` — never part of
            :class:`ExperimentConfig`, never in cache keys, set by the
            CLI's ``--engine``.  The engines agree within one coarse-scan
            step per contact edge (``oracle.intervals`` quantifies it).
    """

    def __init__(
        self,
        chunk_size: Optional[int] = None,
        engine: str = ENGINE_GRID,
    ) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.chunk_size = chunk_size
        self.engine = engine
        self._pools: Dict[int, Constellation] = {}
        self._propagators: Dict[int, BatchPropagator] = {}
        self._visibility: Dict[VisibilityKey, PackedVisibility] = {}
        self._intervals: Dict[VisibilityKey, ContactIntervals] = {}
        self._geometry: Dict[
            Tuple[Tuple[GroundSite, ...], TimeGrid], SiteGeometry
        ] = {}
        self._subsets: Dict[tuple, object] = {}
        # Persistent worker pool (duck-typed: anything with dispose()).
        # Owned here so `clear()` tears down workers along with the shared
        # segments they map; set by the parallel runner.
        self._worker_pool: Optional[object] = None

    def pool(self, seed: int = 0) -> Constellation:
        """The cached synthetic Starlink-like pool (4408 satellites)."""
        if seed not in self._pools:
            _POOL_MISSES.inc()
            _LOG.info("building starlink-like pool (seed=%d)", seed)
            self._pools[seed] = starlink_like_constellation(
                rng=np.random.default_rng(seed)
            )
        else:
            _POOL_HITS.inc()
        return self._pools[seed]

    def pool_propagator(self, seed: int = 0) -> BatchPropagator:
        """A cached :class:`BatchPropagator` over the pool.

        Reusing one propagator instance across Monte-Carlo rebuilds keeps
        :meth:`SiteGeometry.thresholds`' per-propagator cache hot (the
        threshold table only depends on the pool's radii and the sites).
        """
        if seed not in self._propagators:
            self._propagators[seed] = BatchPropagator(self.pool(seed).elements)
        return self._propagators[seed]

    def site_geometry(
        self, sites: Sequence[GroundSite], grid: TimeGrid
    ) -> SiteGeometry:
        """The cached :class:`SiteGeometry` for a (sites, grid) pair.

        Sites and grid are fixed per experiment while the constellation
        sample varies, so the stacked unit vectors, radii, thresholds and
        the full ECI unit track are computed once and reused by every run.
        """
        key = (tuple(sites), grid)
        geometry = self._geometry.get(key)
        if geometry is None:
            _GEO_MISSES.inc()
            geometry = SiteGeometry(key[0], grid)
            geometry.prime_track()
            self._geometry[key] = geometry
        else:
            _GEO_HITS.inc()
        return geometry

    def visibility(
        self,
        config: ExperimentConfig,
        pool_seed: int = 0,
        out_allocator: Optional[Callable[[Tuple[int, int, int]], np.ndarray]] = None,
    ) -> PackedVisibility:
        """Packed visibility of the full pool at every experiment site.

        This is the one expensive computation (~30-60 s for a week at
        60-120 s steps); everything downstream is boolean reductions.
        Cached per (pool seed, step, elevation mask, horizon).

        ``out_allocator`` (cache-miss only) is called with the packed shape
        ``(S, N, ceil(T/8))`` and must return uint8 storage to pack into —
        the parallel runner allocates a shared-memory segment here so the
        tensor is born shared instead of copied afterwards (see
        :func:`repro.runner.shared.ensure_shared_visibility`).
        """
        key = visibility_cache_key(config, pool_seed)
        if key not in self._visibility:
            _VIS_MISSES.inc()
            _LOG.info(
                "visibility cache miss: building packed tensor "
                "(pool_seed=%d step=%.0fs mask=%.1fdeg duration=%.0fs)",
                *key,
            )
            sites = [
                city.terminal(min_elevation_deg=config.min_elevation_deg)
                for city in ALL_SITES
            ]
            grid = config.grid()
            propagator = self.pool_propagator(pool_seed)
            geometry = self.site_geometry(sites, grid)
            out = None
            if out_allocator is not None:
                out = out_allocator(
                    (geometry.n_sites, propagator.count, (grid.count + 7) // 8)
                )
            start = time.perf_counter()
            with span("visibility.build"):
                self._visibility[key] = packed_visibility(
                    propagator,
                    sites,
                    grid,
                    chunk_size=self.chunk_size,
                    geometry=geometry,
                    out=out,
                )
            elapsed = time.perf_counter() - start
            _VIS_BUILD_SECONDS.observe(elapsed)
            _VIS_LAST_BUILD.set(elapsed)
            _LOG.info("packed tensor built in %.2f s", elapsed)
        else:
            _VIS_HITS.inc()
        return self._visibility[key]

    def contact_intervals(
        self, config: ExperimentConfig, pool_seed: int = 0
    ) -> ContactIntervals:
        """Analytic contact windows of the full pool at every site.

        The intervals-engine sibling of :meth:`visibility`: the coarse
        scan runs on the config's own grid (so both engines detect exactly
        the same passes) and every edge is refined by root-finding.
        Cached under the same key shape as the packed tensor.
        """
        key = visibility_cache_key(config, pool_seed)
        if key not in self._intervals:
            _INT_MISSES.inc()
            _LOG.info(
                "interval cache miss: finding contact windows "
                "(pool_seed=%d step=%.0fs mask=%.1fdeg duration=%.0fs)",
                *key,
            )
            sites = [
                city.terminal(min_elevation_deg=config.min_elevation_deg)
                for city in ALL_SITES
            ]
            grid = config.grid()
            propagator = self.pool_propagator(pool_seed)
            geometry = self.site_geometry(sites, grid)
            start = time.perf_counter()
            with span("intervals.build"):
                self._intervals[key] = find_contact_intervals(
                    propagator,
                    sites,
                    grid,
                    geometry=geometry,
                    chunk_size=self.chunk_size,
                )
            elapsed = time.perf_counter() - start
            _INT_BUILD_SECONDS.observe(elapsed)
            _INT_LAST_BUILD.set(elapsed)
            _LOG.info(
                "found %d contact windows in %.2f s",
                self._intervals[key].n_contacts,
                elapsed,
            )
        else:
            _INT_HITS.inc()
        return self._intervals[key]

    def install_visibility(
        self,
        config: ExperimentConfig,
        visibility: PackedVisibility,
        pool_seed: int = 0,
    ) -> None:
        """Seed the cache with an externally built tensor.

        Parallel workers attach the parent's tensor from shared memory and
        install it here, so scenario kernels hit the cache instead of
        triggering a per-worker rebuild (or a ~100 MB pickle).
        """
        self._visibility[visibility_cache_key(config, pool_seed)] = visibility

    def install_intervals(
        self,
        config: ExperimentConfig,
        contacts: ContactIntervals,
        pool_seed: int = 0,
    ) -> None:
        """Seed the cache with externally built contact windows.

        The intervals-engine sibling of :meth:`install_visibility`:
        parallel workers attach the parent's CSR interval arrays from
        shared memory (or receive a pickled copy on platforms without it)
        and install them here, so ``ctx.contacts()`` hits the cache
        instead of re-scanning the whole horizon per worker.
        """
        self._intervals[visibility_cache_key(config, pool_seed)] = contacts

    def subset_query(self, config: ExperimentConfig, fleet=None, pool_seed: int = 0):
        """An engine-appropriate subset-query object, cached per fleet.

        Returns a :class:`repro.sim.kernels.subsets.SubsetQuery` (grid) or
        :class:`repro.sim.intervals.IntervalSubsetQuery` (intervals) whose
        precompute covers exactly ``fleet`` (pool indices; None = the whole
        pool).  Attrition/withdrawal-style experiments pay the precompute
        once and answer every composition with a cheap masked reduction.

        When the full-pool artifact is already cached the precompute is a
        free row gather; on a cold cache with a small fleet the build is
        *fleet-scoped* — the einsum/trig scale with the fleet, not the
        pool, which is the ~50x win behind ``ablation_failures``.  Both
        paths yield bit-identical query results (all-circular pool;
        pinned by tests/sim/test_subsets.py).
        """
        from repro.sim.intervals import IntervalSubsetQuery
        from repro.sim.kernels.subsets import SubsetQuery, _as_sorted_fleet

        sorted_fleet = None if fleet is None else _as_sorted_fleet(fleet)
        base_key = visibility_cache_key(config, pool_seed)
        key = (
            base_key,
            self.engine,
            None if sorted_fleet is None else sorted_fleet.tobytes(),
        )
        cached = self._subsets.get(key)
        if cached is not None:
            _SUBSET_HITS.inc()
            return cached
        _SUBSET_MISSES.inc()
        if self.engine == ENGINE_INTERVALS:
            if sorted_fleet is None or base_key in self._intervals:
                query = IntervalSubsetQuery.from_contacts(
                    self.contact_intervals(config, pool_seed), sorted_fleet
                )
            else:
                query = IntervalSubsetQuery(
                    self._fleet_scoped_intervals(config, pool_seed, sorted_fleet),
                    sorted_fleet,
                )
        else:
            if sorted_fleet is None or base_key in self._visibility:
                query = SubsetQuery.from_visibility(
                    self.visibility(config, pool_seed), sorted_fleet
                )
            else:
                sites = [
                    city.terminal(min_elevation_deg=config.min_elevation_deg)
                    for city in ALL_SITES
                ]
                grid = config.grid()
                with span("subsets.build"):
                    query = SubsetQuery.build(
                        self.pool_propagator(pool_seed),
                        self.site_geometry(sites, grid),
                        grid,
                        sorted_fleet,
                        chunk_size=self.chunk_size,
                    )
        self._subsets[key] = query
        return query

    def _fleet_scoped_intervals(
        self, config: ExperimentConfig, pool_seed: int, sorted_fleet: np.ndarray
    ) -> ContactIntervals:
        """Contact windows of one fleet only (satellite axis = fleet order)."""
        sites = [
            city.terminal(min_elevation_deg=config.min_elevation_deg)
            for city in ALL_SITES
        ]
        grid = config.grid()
        propagator = self.pool_propagator(pool_seed).subset(sorted_fleet)
        with span("subsets.build"):
            return find_contact_intervals(
                propagator,
                sites,
                grid,
                geometry=self.site_geometry(sites, grid),
                chunk_size=self.chunk_size,
            )

    def cached_visibility(self) -> Dict[VisibilityKey, PackedVisibility]:
        """A copy of the live visibility cache (tests inspect keying)."""
        return dict(self._visibility)

    def cached_intervals(self) -> Dict[VisibilityKey, ContactIntervals]:
        """A copy of the live contact-interval cache (tests inspect keying)."""
        return dict(self._intervals)

    def cached_pool_seeds(self) -> Tuple[int, ...]:
        return tuple(sorted(self._pools))

    def dispose_segments(self) -> None:
        """Release shared-memory segments owned by cached artifacts.

        An artifact whose ``segment`` is set was packed straight into a
        ``multiprocessing.shared_memory`` segment this context owns (the
        parallel-runner path); its arrays are views into that segment, so
        callers must drop the artifact (:meth:`clear`) along with the
        segment.  Covers both the packed visibility tensors and the CSR
        contact-interval arrays.  Idempotent; workers never own segments
        (their attached artifacts have ``segment is None``), so this never
        unlinks memory out from under a sibling process.
        """
        cached = list(self._visibility.values())
        cached.extend(self._intervals.values())
        for artifact in cached:
            segment = getattr(artifact, "segment", None)
            if segment is None:
                continue
            artifact.segment = None
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def adopt_worker_pool(self, pool: object) -> None:
        """Attach a persistent worker pool, disposing any previous one."""
        if self._worker_pool is not None and self._worker_pool is not pool:
            self._worker_pool.dispose()
        self._worker_pool = pool

    @property
    def worker_pool(self) -> Optional[object]:
        """The live persistent worker pool, if the runner attached one."""
        return self._worker_pool

    def dispose_worker_pool(self) -> None:
        """Tear down the persistent worker pool (idempotent)."""
        pool = self._worker_pool
        self._worker_pool = None
        if pool is not None:
            pool.dispose()

    def clear(self) -> None:
        """Drop every cached pool/visibility/geometry this context owns.

        Also tears down the persistent worker pool: its workers map the
        shared segments disposed below, and the next parallel run must
        respawn against fresh world state.
        """
        self.dispose_worker_pool()
        self.dispose_segments()
        _POOL_EVICTIONS.inc(len(self._pools))
        _VIS_EVICTIONS.inc(len(self._visibility))
        _GEO_EVICTIONS.inc(len(self._geometry))
        _INT_EVICTIONS.inc(len(self._intervals))
        self._pools.clear()
        self._propagators.clear()
        self._visibility.clear()
        self._intervals.clear()
        self._geometry.clear()
        self._subsets.clear()


#: Contexts holding shared-memory-backed tensors; their segments must be
#: unlinked before interpreter exit or the OS keeps the /dev/shm files.
#: Weak so contexts stay garbage-collectable; pool *worker* processes never
#: register here (they exit via os._exit and own no segments anyway).
_SEGMENT_OWNERS: "weakref.WeakSet[ExperimentContext]" = weakref.WeakSet()


def _register_segment_owner(context: ExperimentContext) -> None:
    _SEGMENT_OWNERS.add(context)


@atexit.register
def _dispose_segments_at_exit() -> None:  # pragma: no cover - exit hook
    for context in list(_SEGMENT_OWNERS):
        context.dispose_segments()


#: The process-default context behind the module-level helpers.
_DEFAULT_CONTEXT = ExperimentContext()


def default_context() -> ExperimentContext:
    """The process-default :class:`ExperimentContext`."""
    return _DEFAULT_CONTEXT


def starlink_pool(seed: int = 0) -> Constellation:
    """The default context's cached Starlink-like pool."""
    return _DEFAULT_CONTEXT.pool(seed)


def pool_visibility(config: ExperimentConfig, pool_seed: int = 0) -> PackedVisibility:
    """The default context's packed visibility for ``config``."""
    return _DEFAULT_CONTEXT.visibility(config, pool_seed)


def pool_contact_intervals(
    config: ExperimentConfig, pool_seed: int = 0
) -> ContactIntervals:
    """The default context's analytic contact windows for ``config``."""
    return _DEFAULT_CONTEXT.contact_intervals(config, pool_seed)


def clear_caches() -> None:
    """Drop the default context's caches (tests use this to bound memory)."""
    _DEFAULT_CONTEXT.clear()


#: Lazily built, read-only normalized city-weight vector.  The weighted
#: coverage reduction below runs inside every Monte-Carlo kernel of
#: Figs. 4a/5/6 and the sharing experiment; rebuilding the vector per call
#: was measurable noise in exactly those hot loops.
_CITY_WEIGHTS: Optional[np.ndarray] = None

#: City rows of the visibility tensor (sites 1..21) as a fancy index.
_CITY_ROWS = np.array(CITY_INDICES)


def city_weights() -> np.ndarray:
    """Normalized population weights of the 21 cities (cached, read-only)."""
    global _CITY_WEIGHTS
    if _CITY_WEIGHTS is None:
        weights = np.array(population_weights(CITIES))
        weights.flags.writeable = False
        _CITY_WEIGHTS = weights
    return _CITY_WEIGHTS


def weighted_city_coverage_fraction(
    visibility: PackedVisibility, sat_indices: np.ndarray
) -> float:
    """Population-weighted coverage over the 21 cities for a pool subset."""
    fractions = visibility.coverage_fractions(sat_indices)
    return float(city_weights() @ fractions[_CITY_ROWS])


def weighted_city_coverage_from_intervals(
    contacts: ContactIntervals, sat_indices: np.ndarray
) -> float:
    """:func:`weighted_city_coverage_fraction` on the intervals engine."""
    fractions = contacts.coverage_fractions(sat_indices)
    return float(city_weights() @ fractions[_CITY_ROWS])


def weighted_city_coverage(reducer, sat_indices) -> float:
    """Population-weighted city coverage via any ``coverage_fractions`` source.

    Works uniformly over :class:`~repro.sim.visibility.PackedVisibility`,
    :class:`~repro.sim.intervals.ContactIntervals`, and the engine's
    subset-query objects (:meth:`ExperimentContext.subset_query`), all of
    which return per-site fractions in :data:`ALL_SITES` order.
    """
    fractions = reducer.coverage_fractions(sat_indices)
    return float(city_weights() @ fractions[_CITY_ROWS])
