"""Shared experiment infrastructure.

The Monte-Carlo experiments all sample from the same synthetic Starlink-like
pool and evaluate coverage at the same sites (the 21 cities and/or Taipei),
so the expensive artifacts — the pool and its packed visibility tensor — are
built once per configuration and cached at module level.  Cache traffic and
build time are accounted through :mod:`repro.obs` (counters
``experiments.visibility_cache.*`` / ``experiments.pool_cache.*`` and the
``visibility.build`` span).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.constants import DEFAULT_MIN_ELEVATION_DEG, WEEK_S
from repro.constellation.satellite import Constellation
from repro.constellation.shells import starlink_like_constellation
from repro.ground.cities import CITIES, TAIPEI, population_weights
from repro.obs import get_logger, metrics
from repro.obs.trace import span
from repro.sim.clock import TimeGrid
from repro.sim.visibility import PackedVisibility, packed_visibility

_LOG = get_logger(__name__)

_POOL_HITS = metrics.counter("experiments.pool_cache.hits")
_POOL_MISSES = metrics.counter("experiments.pool_cache.misses")
_VIS_HITS = metrics.counter("experiments.visibility_cache.hits")
_VIS_MISSES = metrics.counter("experiments.visibility_cache.misses")
_VIS_BUILD_SECONDS = metrics.histogram("experiments.visibility_cache.build_seconds")
_VIS_LAST_BUILD = metrics.gauge("experiments.visibility_cache.last_build_s")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every figure experiment.

    The paper runs 100 Monte-Carlo repetitions of each experiment at an
    unstated time step; the defaults here (20 runs, 120 s) keep a full
    benchmark pass in minutes on a laptop while leaving the statistics
    stable (means move by well under the figure-level differences).
    EXPERIMENTS.md records the configuration used for the reported numbers.
    """

    runs: int = 20
    step_s: float = 120.0
    seed: int = 2024
    min_elevation_deg: float = DEFAULT_MIN_ELEVATION_DEG
    duration_s: float = WEEK_S  # The paper's horizon: one simulated week.

    def grid(self) -> TimeGrid:
        return TimeGrid(duration_s=self.duration_s, step_s=self.step_s)

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)


#: All experiment sites: index 0 is Taipei (Fig. 2), 1..21 are the cities.
ALL_SITES = (TAIPEI,) + tuple(CITIES)
TAIPEI_INDEX = 0
CITY_INDICES = tuple(range(1, len(ALL_SITES)))

_POOL_CACHE: Dict[int, Constellation] = {}
#: Keyed by every config field the tensor depends on — pool seed, step,
#: elevation mask, AND horizon.  Omitting the horizon aliased differently
#: sized grids onto one entry the moment ``duration_s`` became configurable.
_VISIBILITY_CACHE: Dict[Tuple[int, float, float, float], PackedVisibility] = {}


def starlink_pool(seed: int = 0) -> Constellation:
    """The cached synthetic Starlink-like pool (4408 satellites)."""
    if seed not in _POOL_CACHE:
        _POOL_MISSES.inc()
        _LOG.info("building starlink-like pool (seed=%d)", seed)
        _POOL_CACHE[seed] = starlink_like_constellation(
            rng=np.random.default_rng(seed)
        )
    else:
        _POOL_HITS.inc()
    return _POOL_CACHE[seed]


def pool_visibility(config: ExperimentConfig, pool_seed: int = 0) -> PackedVisibility:
    """Packed visibility of the full pool at every experiment site.

    This is the one expensive computation (~30-60 s for a week at 60-120 s
    steps); everything downstream is boolean reductions.  Cached per
    (pool seed, step, elevation mask, horizon).
    """
    key = (pool_seed, config.step_s, config.min_elevation_deg, config.duration_s)
    if key not in _VISIBILITY_CACHE:
        _VIS_MISSES.inc()
        _LOG.info(
            "visibility cache miss: building packed tensor "
            "(pool_seed=%d step=%.0fs mask=%.1fdeg duration=%.0fs)",
            *key,
        )
        sites = [
            city.terminal(min_elevation_deg=config.min_elevation_deg)
            for city in ALL_SITES
        ]
        start = time.perf_counter()
        with span("visibility.build"):
            _VISIBILITY_CACHE[key] = packed_visibility(
                starlink_pool(pool_seed), sites, config.grid()
            )
        elapsed = time.perf_counter() - start
        _VIS_BUILD_SECONDS.observe(elapsed)
        _VIS_LAST_BUILD.set(elapsed)
        _LOG.info("packed tensor built in %.2f s", elapsed)
    else:
        _VIS_HITS.inc()
    return _VISIBILITY_CACHE[key]


def city_weights() -> np.ndarray:
    """Normalized population weights of the 21 cities."""
    return np.array(population_weights(CITIES))


def weighted_city_coverage_fraction(
    visibility: PackedVisibility, sat_indices: np.ndarray
) -> float:
    """Population-weighted coverage over the 21 cities for a pool subset."""
    fractions = visibility.coverage_fractions(sat_indices)
    return float(city_weights() @ fractions[list(CITY_INDICES)])


def clear_caches() -> None:
    """Drop cached pools/visibility (tests use this to bound memory)."""
    _POOL_CACHE.clear()
    _VISIBILITY_CACHE.clear()
