"""Fig. 4a — coverage gain from adding one satellite to an existing base.

Paper methodology (§3.3): population-weighted global coverage time over one
week, over the 21 cities; in each run, randomly sample one satellite from
the Starlink network and add it to a base of 1, 100, or 500 satellites.

Paper anchors: on a single-satellite base the addition gains >1 hour on
average and >4 hours at best; gains shrink as the base grows (diminishing
returns), but remain visible at 100 and 500 satellites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
    weighted_city_coverage_fraction,
    weighted_city_coverage_from_intervals,
)
from repro.runner import RunContext, Scenario, run_scenario

DEFAULT_BASE_SIZES: Sequence[int] = (1, 100, 500)


@dataclass(frozen=True)
class Fig4aPoint:
    base_satellites: int
    mean_gain_hours: float
    max_gain_hours: float
    min_gain_hours: float


@dataclass(frozen=True)
class Fig4aResult:
    points: List[Fig4aPoint]
    config: ExperimentConfig

    def mean_gain_series(self) -> List[Tuple[int, float]]:
        return [(p.base_satellites, p.mean_gain_hours) for p in self.points]


@dataclass
class Fig4aScenario(Scenario):
    """Coverage gain from one extra satellite on a random base.

    Each run draws a fresh base *and* a fresh additional satellite (disjoint
    from the base), then measures the weighted coverage-time delta.
    """

    base_sizes: Sequence[int] = DEFAULT_BASE_SIZES

    name = "fig4a"
    salt = 4

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        pool_size = len(context.pool())
        for base_size in self.base_sizes:
            if base_size + 1 > pool_size:
                raise ValueError(
                    f"size {base_size + 1} exceeds pool of {pool_size}"
                )
        return list(self.base_sizes)

    def run_one(self, ctx: RunContext, run_index: int) -> float:
        if ctx.engine == ENGINE_INTERVALS:
            contacts = ctx.contacts()

            def coverage(indices: np.ndarray) -> float:
                return float(
                    weighted_city_coverage_from_intervals(contacts, indices)
                )
        else:
            visibility = ctx.visibility()

            def coverage(indices: np.ndarray) -> float:
                return float(
                    weighted_city_coverage_fraction(visibility, indices)
                )

        draw = ctx.rng.choice(ctx.pool_size(), size=ctx.point + 1, replace=False)
        base, extra = draw[:-1], draw
        horizon_hours = ctx.config.grid().duration_s / 3600.0
        return float((coverage(extra) - coverage(base)) * horizon_hours)

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[float],
        config: ExperimentConfig,
    ) -> Fig4aPoint:
        gains = np.array(samples)
        return Fig4aPoint(
            base_satellites=point,
            mean_gain_hours=float(gains.mean()),
            max_gain_hours=float(gains.max()),
            min_gain_hours=float(gains.min()),
        )

    def finalize(
        self, reduced: List[Fig4aPoint], config: ExperimentConfig
    ) -> Fig4aResult:
        return Fig4aResult(points=reduced, config=config)


def run_fig4a(
    config: ExperimentConfig = ExperimentConfig(),
    base_sizes: Sequence[int] = DEFAULT_BASE_SIZES,
) -> Fig4aResult:
    """Run the Fig. 4a experiment (see :class:`Fig4aScenario`)."""
    return run_scenario(Fig4aScenario(base_sizes=base_sizes), config)
