"""Fig. 4a — coverage gain from adding one satellite to an existing base.

Paper methodology (§3.3): population-weighted global coverage time over one
week, over the 21 cities; in each run, randomly sample one satellite from
the Starlink network and add it to a base of 1, 100, or 500 satellites.

Paper anchors: on a single-satellite base the addition gains >1 hour on
average and >4 hours at best; gains shrink as the base grows (diminishing
returns), but remain visible at 100 and 500 satellites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    pool_visibility,
    starlink_pool,
    weighted_city_coverage_fraction,
)
from repro.obs.trace import span

DEFAULT_BASE_SIZES: Sequence[int] = (1, 100, 500)


@dataclass(frozen=True)
class Fig4aPoint:
    base_satellites: int
    mean_gain_hours: float
    max_gain_hours: float
    min_gain_hours: float


@dataclass(frozen=True)
class Fig4aResult:
    points: List[Fig4aPoint]
    config: ExperimentConfig

    def mean_gain_series(self) -> List[Tuple[int, float]]:
        return [(p.base_satellites, p.mean_gain_hours) for p in self.points]


def run_fig4a(
    config: ExperimentConfig = ExperimentConfig(),
    base_sizes: Sequence[int] = DEFAULT_BASE_SIZES,
) -> Fig4aResult:
    """Run the Fig. 4a experiment.

    Each run draws a fresh base *and* a fresh additional satellite (disjoint
    from the base), then measures the weighted coverage-time delta.
    """
    visibility = pool_visibility(config)
    pool_size = len(starlink_pool())
    rng = config.rng(salt=4)
    horizon_hours = config.grid().duration_s / 3600.0

    points: List[Fig4aPoint] = []
    with span("analysis.fig4a"):
        for base_size in base_sizes:
            gains = np.empty(config.runs)
            for run in range(config.runs):
                draw = rng.choice(pool_size, size=base_size + 1, replace=False)
                base, extra = draw[:-1], draw
                before = weighted_city_coverage_fraction(visibility, base)
                after = weighted_city_coverage_fraction(visibility, extra)
                gains[run] = (after - before) * horizon_hours
            points.append(
                Fig4aPoint(
                    base_satellites=base_size,
                    mean_gain_hours=float(gains.mean()),
                    max_gain_hours=float(gains.max()),
                    min_gain_hours=float(gains.min()),
                )
            )
    return Fig4aResult(points=points, config=config)
