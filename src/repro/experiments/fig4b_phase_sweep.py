"""Fig. 4b — impact of phase placement between existing satellites.

Paper methodology (§3.3): an imaginary constellation of 12 satellites, each
30 degrees apart in one orbital plane (53 degree inclination, 546 km); add a
satellite at 29 positions between two of the original satellites, spaced
about 1 degree apart in phase; report the coverage improvement vs the
original 12.

Paper anchor: the midpoint (15 degrees from each neighbour) maximizes the
improvement — the farthest point from existing satellites wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.constellation.design import (
    fig4b_base_constellation,
    phase_sweep_candidates,
)
from repro.core.placement import PlacementScorer
from repro.experiments.common import ExperimentConfig, ExperimentContext
from repro.ground.cities import CITIES
from repro.runner import RunContext, Scenario, run_scenario


@dataclass(frozen=True)
class Fig4bPoint:
    phase_offset_deg: float
    gain_hours: float


@dataclass(frozen=True)
class Fig4bResult:
    points: List[Fig4bPoint]
    config: ExperimentConfig

    def best_offset_deg(self) -> float:
        return max(self.points, key=lambda p: p.gain_hours).phase_offset_deg

    def gain_series(self) -> List[Tuple[float, float]]:
        return [(p.phase_offset_deg, p.gain_hours) for p in self.points]


@dataclass
class Fig4bScenario(Scenario):
    """Deterministic phase sweep: one sweep point, one run, no pool.

    The :class:`~repro.core.placement.PlacementScorer` scores every phase
    candidate against the 12-satellite base in one vectorized pass, so the
    whole sweep is a single kernel invocation rather than one per candidate.
    """

    positions: int = 29

    name = "fig4b"
    uses_pool = False

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        if self.positions < 1:
            raise ValueError(f"positions must be >= 1, got {self.positions}")
        return [self.positions]

    def runs_for(self, point: int, config: ExperimentConfig) -> int:
        return 1  # Deterministic: no Monte-Carlo repetition.

    def run_one(self, ctx: RunContext, run_index: int) -> List[float]:
        base = fig4b_base_constellation()
        candidates = phase_sweep_candidates(
            base[0].elements, gap_deg=30.0, positions=ctx.point
        )
        scorer = PlacementScorer(
            base, ctx.config.grid(), cities=CITIES, context=ctx.context
        )
        scored = scorer.score(candidates)
        return [candidate.coverage_gain_hours for candidate in scored]

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[List[float]],
        config: ExperimentConfig,
    ) -> List[Fig4bPoint]:
        (gains,) = samples
        step = 30.0 / (point + 1)
        return [
            Fig4bPoint(phase_offset_deg=step * (index + 1), gain_hours=gain)
            for index, gain in enumerate(gains)
        ]

    def finalize(
        self, reduced: List[List[Fig4bPoint]], config: ExperimentConfig
    ) -> Fig4bResult:
        (points,) = reduced
        return Fig4bResult(points=points, config=config)


def run_fig4b(
    config: ExperimentConfig = ExperimentConfig(),
    positions: int = 29,
) -> Fig4bResult:
    """Run the Fig. 4b phase sweep (see :class:`Fig4bScenario`)."""
    return run_scenario(Fig4bScenario(positions=positions), config)
