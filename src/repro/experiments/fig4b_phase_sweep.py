"""Fig. 4b — impact of phase placement between existing satellites.

Paper methodology (§3.3): an imaginary constellation of 12 satellites, each
30 degrees apart in one orbital plane (53 degree inclination, 546 km); add a
satellite at 29 positions between two of the original satellites, spaced
about 1 degree apart in phase; report the coverage improvement vs the
original 12.

Paper anchor: the midpoint (15 degrees from each neighbour) maximizes the
improvement — the farthest point from existing satellites wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.constellation.design import (
    fig4b_base_constellation,
    phase_sweep_candidates,
)
from repro.core.placement import PlacementScorer
from repro.experiments.common import ExperimentConfig
from repro.ground.cities import CITIES
from repro.obs.trace import span


@dataclass(frozen=True)
class Fig4bPoint:
    phase_offset_deg: float
    gain_hours: float


@dataclass(frozen=True)
class Fig4bResult:
    points: List[Fig4bPoint]
    config: ExperimentConfig

    def best_offset_deg(self) -> float:
        return max(self.points, key=lambda p: p.gain_hours).phase_offset_deg

    def gain_series(self) -> List[Tuple[float, float]]:
        return [(p.phase_offset_deg, p.gain_hours) for p in self.points]


def run_fig4b(
    config: ExperimentConfig = ExperimentConfig(),
    positions: int = 29,
) -> Fig4bResult:
    """Run the Fig. 4b phase sweep (deterministic; no Monte-Carlo needed)."""
    base = fig4b_base_constellation()
    candidates = phase_sweep_candidates(
        base[0].elements, gap_deg=30.0, positions=positions
    )
    scorer = PlacementScorer(base, config.grid(), cities=CITIES)
    with span("analysis.fig4b"):
        scored = scorer.score(candidates)
    step = 30.0 / (positions + 1)
    points = [
        Fig4bPoint(
            phase_offset_deg=step * (index + 1),
            gain_hours=candidate.coverage_gain_hours,
        )
        for index, candidate in enumerate(scored)
    ]
    return Fig4bResult(points=points, config=config)
