"""Fig. 3 — satellite idle time vs number of cities served.

Paper methodology (§2): place user terminals in 1..21 cities (the top-20
most populated cities, one per country, plus Melbourne); a satellite is idle
when no terminal is inside its footprint; report mean idle time.

Paper anchors: serving one major city leaves each satellite idle ~99% of the
time; idle time decreases as cities are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    CITY_INDICES,
    ExperimentConfig,
    pool_visibility,
    starlink_pool,
)
from repro.obs.trace import span


@dataclass(frozen=True)
class Fig3Point:
    cities: int
    mean_idle_percent: float
    std_idle_percent: float


@dataclass(frozen=True)
class Fig3Result:
    points: List[Fig3Point]
    config: ExperimentConfig

    def idle_percent_series(self) -> List[Tuple[int, float]]:
        return [(p.cities, p.mean_idle_percent) for p in self.points]


def run_fig3(
    config: ExperimentConfig = ExperimentConfig(),
    city_counts: Sequence[int] = tuple(range(1, 22)),
    sample_size: int = 500,
) -> Fig3Result:
    """Run the Fig. 3 sweep.

    A satellite's idle time depends only on its own footprint vs the
    terminal set, so the random satellite sample just controls the averaging
    population; per run we sample ``sample_size`` satellites and average
    their idle fractions over terminals at the top-k cities.
    """
    visibility = pool_visibility(config)
    pool_size = len(starlink_pool())
    if sample_size > pool_size:
        raise ValueError(f"sample_size {sample_size} exceeds pool {pool_size}")
    rng = config.rng(salt=3)

    points: List[Fig3Point] = []
    with span("analysis.fig3"):
        for count in city_counts:
            if not 1 <= count <= len(CITY_INDICES):
                raise ValueError(f"city count {count} out of range")
            site_indices = list(CITY_INDICES[:count])
            idle_means = np.empty(config.runs)
            for run in range(config.runs):
                sat_indices = rng.choice(pool_size, size=sample_size, replace=False)
                active = visibility.satellite_active_fractions(
                    sat_indices=sat_indices, site_indices=site_indices
                )
                idle_means[run] = 100.0 * (1.0 - active).mean()
            points.append(
                Fig3Point(
                    cities=count,
                    mean_idle_percent=float(idle_means.mean()),
                    std_idle_percent=float(idle_means.std()),
                )
            )
    return Fig3Result(points=points, config=config)
