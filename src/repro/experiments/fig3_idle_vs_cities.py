"""Fig. 3 — satellite idle time vs number of cities served.

Paper methodology (§2): place user terminals in 1..21 cities (the top-20
most populated cities, one per country, plus Melbourne); a satellite is idle
when no terminal is inside its footprint; report mean idle time.

Paper anchors: serving one major city leaves each satellite idle ~99% of the
time; idle time decreases as cities are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    CITY_INDICES,
    ENGINE_INTERVALS,
    ExperimentConfig,
    ExperimentContext,
)
from repro.runner import RunContext, Scenario, run_scenario


@dataclass(frozen=True)
class Fig3Point:
    cities: int
    mean_idle_percent: float
    std_idle_percent: float


@dataclass(frozen=True)
class Fig3Result:
    points: List[Fig3Point]
    config: ExperimentConfig

    def idle_percent_series(self) -> List[Tuple[int, float]]:
        return [(p.cities, p.mean_idle_percent) for p in self.points]


@dataclass
class Fig3Scenario(Scenario):
    """Satellite idle time vs the number of cities served.

    A satellite's idle time depends only on its own footprint vs the
    terminal set, so the random satellite sample just controls the averaging
    population; per run we sample ``sample_size`` satellites and average
    their idle fractions over terminals at the top-k cities.
    """

    city_counts: Sequence[int] = tuple(range(1, 22))
    sample_size: int = 500

    name = "fig3"
    salt = 3

    def sweep(
        self, config: ExperimentConfig, context: ExperimentContext
    ) -> Sequence[int]:
        pool_size = len(context.pool())
        if self.sample_size > pool_size:
            raise ValueError(
                f"sample_size {self.sample_size} exceeds pool {pool_size}"
            )
        for count in self.city_counts:
            if not 1 <= count <= len(CITY_INDICES):
                raise ValueError(f"city count {count} out of range")
        return list(self.city_counts)

    def run_one(self, ctx: RunContext, run_index: int) -> float:
        site_indices = list(CITY_INDICES[: ctx.point])
        sat_indices = ctx.rng.choice(
            ctx.pool_size(), size=self.sample_size, replace=False
        )
        if ctx.engine == ENGINE_INTERVALS:
            active = ctx.contacts().satellite_active_fractions(
                sat_indices=sat_indices, site_indices=site_indices
            )
        else:
            active = ctx.visibility().satellite_active_fractions(
                sat_indices=sat_indices, site_indices=site_indices
            )
        return float(100.0 * (1.0 - active).mean())

    def reduce(
        self,
        point: int,
        point_index: int,
        samples: List[float],
        config: ExperimentConfig,
    ) -> Fig3Point:
        idle_means = np.array(samples)
        return Fig3Point(
            cities=point,
            mean_idle_percent=float(idle_means.mean()),
            std_idle_percent=float(idle_means.std()),
        )

    def finalize(
        self, reduced: List[Fig3Point], config: ExperimentConfig
    ) -> Fig3Result:
        return Fig3Result(points=reduced, config=config)


def run_fig3(
    config: ExperimentConfig = ExperimentConfig(),
    city_counts: Sequence[int] = tuple(range(1, 22)),
    sample_size: int = 500,
) -> Fig3Result:
    """Run the Fig. 3 sweep (see :class:`Fig3Scenario`)."""
    return run_scenario(
        Fig3Scenario(city_counts=city_counts, sample_size=sample_size), config
    )
