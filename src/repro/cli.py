"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro fig2 --runs 10 --step 300
    python -m repro fig5 --log-level INFO --metrics-out run.json
    python -m repro all --parallel 4
    python -m repro list

Each subcommand runs the corresponding experiment at the requested fidelity
and prints the same rows the paper's figure reports (see EXPERIMENTS.md for
the reference configuration and measured-vs-paper numbers).  Figure tables
go to stdout; diagnostics go through the ``repro.*`` logger hierarchy
(``--log-level`` / ``REPRO_LOG``), and ``--metrics-out`` writes a JSON run
report with span timings, counters, and the exact configuration + seed.
``--trace-out`` additionally writes a Chrome trace-event file of the run's
spans and simulation timeline, loadable in Perfetto (https://ui.perfetto.dev).

``--live-status`` streams periodic progress lines (per-scenario ETA,
worker health from heartbeats) to stderr while the experiment runs —
with ``--parallel N`` the workers publish frames over the telemetry bus
(:mod:`repro.obs.bus`) and a SIGKILLed worker is detected and recovered
instead of hanging the run.  ``--metrics-format openmetrics`` switches
``--metrics-out`` from the JSON run report to the OpenMetrics text
exposition (:mod:`repro.obs.expose`).

Beyond the figures there are three utility subcommands::

    python -m repro bench-compare BENCH_A.json BENCH_B.json [--threshold 1.25]
    python -m repro bench-compare --history BENCH_PR1.json BENCH_PR3.json ...
    python -m repro obs diff A.json B.json
    python -m repro validate [--quick|--full] [--update-goldens] [--report FILE]

``bench-compare`` diffs two benchmark records (see benchmarks/) and exits
non-zero on a wall-clock regression past the threshold; with ``--history``
it renders a chain of records as a per-figure wall-time trajectory table
instead.  ``obs diff`` compares two ``--metrics-out`` run reports (spans,
counters, cache/cull ratios, timeline drops; see :mod:`repro.obs.diff`).
``validate`` runs the differential oracle suite, the seeded property-fuzz
harness, and the golden-figure regression gates (see :mod:`repro.validate`),
exiting non-zero on any red check; ``--report`` writes the schema'd
validation verdicts inside an observability run report.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.reporting import Series, Table
from repro.constants import WEEK_S
from repro.experiments.common import ExperimentConfig
from repro.obs import configure_logging, get_logger, write_run_report
from repro.obs.trace import profile, span, track_memory

_LOG = get_logger(__name__)

#: Observability flags shared by every subcommand, shown by ``list``.
OBSERVABILITY_FLAGS = (
    ("--log-level", "diagnostic verbosity (DEBUG..CRITICAL; also REPRO_LOG env)"),
    ("--metrics-out", "write a JSON run report (spans, counters, config, seed)"),
    ("--metrics-format", "run-report format: json (default) or openmetrics"),
    ("--live-status", "stream live progress lines (ETA, worker health) to stderr"),
    ("--profile", "dump cProfile stats for the run to a .pstats file"),
    ("--trace-out", "write a Chrome trace-event JSON (open in Perfetto)"),
    ("--track-memory", "sample tracemalloc peaks per span (adds overhead)"),
    ("--timeline-cap", "simulation-timeline ring capacity (also REPRO_TIMELINE_CAP)"),
)


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        runs=args.runs,
        step_s=args.step,
        seed=args.seed,
        duration_s=args.duration,
        parallel=args.parallel,
    )


def _run_fig2(config: ExperimentConfig) -> None:
    from repro.experiments.fig2_coverage_vs_size import DEFAULT_SIZES, run_fig2

    result = run_fig2(config, sizes=DEFAULT_SIZES)
    table = Table(
        "Fig. 2: % time without coverage at Taipei (1 week)",
        ["satellites", "uncovered %", "mean max gap (h)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.satellites,
            point.mean_uncovered_percent,
            point.mean_max_gap_s / 3600.0,
        )
    table.print()


def _run_fig3(config: ExperimentConfig) -> None:
    from repro.experiments.fig3_idle_vs_cities import run_fig3

    result = run_fig3(config)
    series = Series(
        "Fig. 3: satellite idle time vs cities served (1 week)",
        "cities",
        "mean idle %",
        precision=2,
    )
    for point in result.points:
        series.add_point(point.cities, point.mean_idle_percent)
    series.print()


def _run_fig4a(config: ExperimentConfig) -> None:
    from repro.experiments.fig4a_single_addition import run_fig4a

    result = run_fig4a(config)
    table = Table(
        "Fig. 4a: weighted coverage gain from one added satellite",
        ["base size", "mean gain (h)", "max gain (h)"],
        precision=3,
    )
    for point in result.points:
        table.add_row(point.base_satellites, point.mean_gain_hours, point.max_gain_hours)
    table.print()


def _run_fig4b(config: ExperimentConfig) -> None:
    from repro.experiments.fig4b_phase_sweep import run_fig4b

    result = run_fig4b(config)
    series = Series(
        "Fig. 4b: coverage gain vs phase offset", "offset (deg)", "gain (h)",
        precision=3,
    )
    for point in result.points:
        series.add_point(point.phase_offset_deg, point.gain_hours)
    series.print()
    print(f"best offset: {result.best_offset_deg():.1f} deg")


def _run_fig4c(config: ExperimentConfig) -> None:
    from repro.experiments.fig4c_design_factors import run_fig4c

    result = run_fig4c(config)
    table = Table(
        "Fig. 4c: coverage gain by design factor", ["factor", "gain (min)"],
        precision=1,
    )
    for label, gain in result.ranking():
        table.add_row(label, gain * 60.0)
    table.print()


def _run_fig5(config: ExperimentConfig) -> None:
    from repro.experiments.fig5_withdrawal import DEFAULT_SIZES, run_fig5

    result = run_fig5(config, sizes=DEFAULT_SIZES)
    table = Table(
        "Fig. 5: coverage loss when half the satellites withdraw",
        ["L", "loss %", "lost time (h/week)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(point.satellites, point.mean_reduction_percent, point.mean_lost_hours)
    table.print()


def _run_fig6(config: ExperimentConfig) -> None:
    from repro.experiments.fig6_party_skew import DEFAULT_SKEWS, run_fig6

    result = run_fig6(config, skews=DEFAULT_SKEWS)
    table = Table(
        "Fig. 6: coverage loss when the largest of 11 parties exits",
        ["skew", "largest party sats", "loss %", "lost (h/week)"],
        precision=2,
    )
    for point in result.points:
        table.add_row(
            point.skew,
            point.largest_party_satellites,
            point.mean_reduction_percent,
            point.mean_lost_hours,
        )
    table.print()


def _run_fig1a(config: ExperimentConfig) -> None:
    from repro.orbits.elements import OrbitalElements
    from repro.orbits.groundtrack import (
        compute_ground_track,
        nodal_shift_deg_per_orbit,
    )

    elements = OrbitalElements.from_degrees(altitude_km=546.0, inclination_deg=53.0)
    track = compute_ground_track(elements, 3 * 3600.0, step_s=min(config.step_s, 30.0))
    table = Table(
        "Fig. 1a: 3-hour ground track of one 53 deg / 546 km satellite",
        ["metric", "value"],
        precision=2,
    )
    table.add_row("orbital period (min)", elements.period_s / 60.0)
    table.add_row("max |latitude| (deg)", track.max_latitude_deg)
    table.add_row("westward node shift per orbit (deg)",
                  nodal_shift_deg_per_orbit(elements))
    table.print()


def _run_sharing(config: ExperimentConfig) -> None:
    from repro.experiments.sharing_upside import run_sharing_upside

    result = run_sharing_upside(config)
    upside = result.upside
    table = Table(
        "Sec. 2 claim: the MP-LEO sharing upside", ["metric", "value"],
        precision=3,
    )
    table.add_row("alone coverage (50 sats)", upside.alone_coverage_fraction)
    table.add_row("shared coverage (1000 sats)", upside.shared_coverage_fraction)
    table.add_row("equivalent go-it-alone sats", upside.equivalent_alone_satellites)
    table.add_row("satellite multiplier", upside.satellite_multiplier)
    table.print()


EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], None]] = {
    "fig1a": _run_fig1a,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4a": _run_fig4a,
    "fig4b": _run_fig4b,
    "fig4c": _run_fig4c,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "sharing": _run_sharing,
}


class _Parser(argparse.ArgumentParser):
    """ArgumentParser whose errors point users at ``python -m repro list``."""

    def error(self, message: str):
        self.print_usage(sys.stderr)
        hint = "run 'python -m repro list' to see available experiments and flags"
        self.exit(2, f"{self.prog}: error: {message}\n{hint}\n")


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (``--runs``, ``--parallel``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    """Fidelity + observability flags shared by every experiment subcommand."""
    parser.add_argument(
        "--runs", type=_positive_int, default=10,
        help="Monte-Carlo runs per point (default: 10; paper: 100)",
    )
    parser.add_argument(
        "--step", type=float, default=300.0,
        help="time step in seconds (default: 300)",
    )
    parser.add_argument(
        "--seed", type=int, default=2024, help="random seed (default: 2024)"
    )
    parser.add_argument(
        "--duration", type=float, default=WEEK_S, metavar="SECONDS",
        help="experiment horizon in seconds (default: one week)",
    )
    parser.add_argument(
        "--parallel", type=_positive_int, default=1, metavar="N",
        help="Monte-Carlo worker processes (default: 1 = in-process); "
        "results are identical for every N — per-run seeds are "
        "order-independent",
    )
    parser.add_argument(
        "--chunk-size", type=_positive_int, default=None, metavar="SAMPLES",
        help="time samples per streaming visibility slab (default: 64); "
        "peak build memory scales with it, results do not — streaming is "
        "chunk-invariant bit for bit",
    )
    parser.add_argument(
        "--engine", default="grid", choices=("grid", "intervals"),
        help="contact engine: 'grid' reduces the packed visibility tensor; "
        "'intervals' reduces analytic (rise, set) windows refined by "
        "root-finding (default: grid); an execution knob like --chunk-size — "
        "both engines sample identical satellite subsets",
    )
    parser.add_argument(
        "--kernel-backend", default=None, choices=("numpy", "numba"),
        metavar="NAME",
        help="kernel backend for the hot reductions: 'numpy' (default) or "
        "'numba' (JIT-compiled; requires numba installed); also settable "
        "via the REPRO_KERNEL_BACKEND env var; an execution knob like "
        "--engine — every backend is bit-identical by contract "
        "(enforced by 'repro validate')",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL", type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="diagnostic log level: DEBUG, INFO, WARNING, ERROR, CRITICAL "
        "(default: WARNING, or the REPRO_LOG env var)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a JSON run report (spans, counters, config, seed) to FILE",
    )
    parser.add_argument(
        "--metrics-format", default="json", choices=("json", "openmetrics"),
        help="--metrics-out format: the JSON run report (default) or an "
        "OpenMetrics text exposition of the metrics registry",
    )
    parser.add_argument(
        "--live-status", action="store_true",
        help="stream periodic progress lines (per-scenario ETA, worker "
        "health via heartbeats) to stderr while the experiment runs; with "
        "--parallel N, workers stream telemetry frames live over the bus",
    )
    parser.add_argument(
        "--timeline-cap", type=_positive_int, default=None, metavar="EVENTS",
        help="simulation-timeline ring capacity (default: 65536, or the "
        "REPRO_TIMELINE_CAP env var); raise it when the run report warns "
        "about dropped timeline events",
    )
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile the run with cProfile and dump stats to FILE (.pstats)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of the run (spans + simulation "
        "timeline) to FILE; open it in Perfetto or chrome://tracing",
    )
    parser.add_argument(
        "--track-memory", action="store_true",
        help="sample tracemalloc peak memory per span (folded into the "
        "--metrics-out report; adds measurable overhead)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Regenerate figures from 'A Call for Decentralized "
        "Satellite Networks' (HotNets '24).",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list available experiments and common flags"
    )

    for name in EXPERIMENTS:
        sub = subparsers.add_parser(name, help=f"run the {name} experiment")
        _add_common_arguments(sub)

    all_sub = subparsers.add_parser("all", help="run every experiment")
    _add_common_arguments(all_sub)

    bench = subparsers.add_parser(
        "bench-compare",
        help="diff two benchmark records and flag wall-clock regressions",
    )
    bench.add_argument("bench_a", metavar="BENCH_A.json",
                       help="baseline benchmark record")
    bench.add_argument("bench_b", metavar="BENCH_B.json",
                       help="candidate benchmark record")
    bench.add_argument(
        "bench_more", metavar="BENCH_N.json", nargs="*",
        help="further records for --history (chronological order)",
    )
    bench.add_argument(
        "--history", action="store_true",
        help="render all records as a per-figure wall-time trajectory "
        "table (informational, exits 0) instead of the pairwise gate",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.25, metavar="RATIO",
        help="fail when a figure's wall-clock ratio (new/base) exceeds "
        "this (default: 1.25)",
    )
    bench.add_argument(
        "--min-wall-s", type=float, default=0.01, metavar="SECONDS",
        help="ignore figures faster than this in the candidate record "
        "(default: 0.01)",
    )
    bench.add_argument(
        "--report-only", action="store_true",
        help="print the comparison but always exit 0",
    )

    obs = subparsers.add_parser(
        "obs", help="observability tooling over run-report artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two --metrics-out run reports (spans, counters, "
        "cache/cull ratios, timeline drops)",
    )
    obs_diff.add_argument("report_a", metavar="A.json",
                          help="baseline run report")
    obs_diff.add_argument("report_b", metavar="B.json",
                          help="comparison run report")

    validate = subparsers.add_parser(
        "validate",
        help="run oracle cross-checks, property fuzzing, and golden gates",
    )
    tier = validate.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick", dest="mode", action="store_const", const="quick",
        help="CI-sized tier: coarse oracles, few fuzz trials (default)",
    )
    tier.add_argument(
        "--full", dest="mode", action="store_const", const="full",
        help="pre-merge tier for perf PRs: fine oracles, many fuzz trials",
    )
    validate.set_defaults(mode="quick")
    validate.add_argument(
        "--update-goldens", action="store_true",
        help="rewrite the committed golden snapshots from this run "
        "(review the JSON diff before committing)",
    )
    validate.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="root seed of the oracle/fuzz streams (default: 2024; the "
        "goldens always use their own committed configuration)",
    )
    validate.add_argument(
        "--report", default=None, metavar="FILE",
        help="write an observability run report with the validation "
        "verdicts under extra.validation",
    )
    validate.add_argument(
        "--log-level", default=None, metavar="LEVEL", type=str.upper,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="diagnostic log level (default: WARNING, or REPRO_LOG)",
    )
    return parser


def _run_validate(args: argparse.Namespace) -> int:
    from repro.validate import DEFAULT_SEED, render_validation_report, run_validation
    from repro.validate.goldens import GOLDEN_CONFIG

    seed = DEFAULT_SEED if args.seed is None else args.seed
    with span("validate"):
        report = run_validation(
            mode=args.mode, seed=seed, update_goldens=args.update_goldens
        )
    render_validation_report(report)
    if args.report:
        parent = os.path.dirname(os.path.abspath(args.report))
        if parent:
            os.makedirs(parent, exist_ok=True)
        document = write_run_report(
            args.report,
            command="validate",
            config=GOLDEN_CONFIG,
            extra={"validation": report.to_dict()},
        )
        _LOG.info(
            "validation report written to %s (%d checks, %d spans)",
            args.report, len(report.checks), len(document["spans"]),
        )
    return 0 if report.ok else 1


def _run_list() -> int:
    for name in EXPERIMENTS:
        print(name)
    print()
    print(
        "common flags (every experiment): "
        "--runs --step --seed --duration --parallel --chunk-size --engine "
        "--kernel-backend"
    )
    print("observability flags:")
    for flag, description in OBSERVABILITY_FLAGS:
        print(f"  {flag:14s}{description}")
    print()
    print(
        "utility subcommands: bench-compare (perf gate), "
        "validate --quick|--full [--update-goldens] (correctness gate)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        return _run_list()

    if args.command == "bench-compare":
        from repro.obs.bench import run_bench_compare, run_bench_history

        configure_logging(getattr(args, "log_level", None))
        if args.history:
            return run_bench_history(
                [args.bench_a, args.bench_b] + list(args.bench_more)
            )
        if args.bench_more:
            parser.error(
                "bench-compare takes exactly two records unless --history"
            )
        return run_bench_compare(
            args.bench_a,
            args.bench_b,
            threshold=args.threshold,
            min_wall_s=args.min_wall_s,
            report_only=args.report_only,
        )

    if args.command == "obs":
        from repro.obs.diff import run_obs_diff

        configure_logging(getattr(args, "log_level", None))
        return run_obs_diff(args.report_a, args.report_b)

    if args.command == "validate":
        configure_logging(args.log_level)
        return _run_validate(args)

    configure_logging(args.log_level)
    config = _config_from_args(args)
    if getattr(args, "chunk_size", None):
        # An execution knob like --parallel, not part of ExperimentConfig:
        # streaming is chunk-invariant, so it must not enter cache keys or
        # the golden config contract.
        from repro.experiments.common import default_context

        default_context().chunk_size = args.chunk_size
    if getattr(args, "engine", "grid") != "grid":
        # Same contract as --chunk-size: the engine switch changes how
        # contacts are computed, never which samples are drawn, so it stays
        # out of ExperimentConfig and the golden config contract.
        from repro.experiments.common import default_context

        default_context().engine = args.engine
    if getattr(args, "kernel_backend", None):
        # Same contract as --engine: backends change how the hot loops are
        # executed, never what they compute (bit-identity is enforced by
        # the oracle.backends validation check), so the choice stays out
        # of ExperimentConfig and the golden config contract.
        from repro.sim import backends

        try:
            backends.set_default_backend(args.kernel_backend)
        except RuntimeError as error:  # e.g. numba not installed
            parser.error(str(error))
    if getattr(args, "timeline_cap", None):
        from repro.obs import timeline as obs_timeline

        obs_timeline.resize(args.timeline_cap)
    live_bus = None
    if getattr(args, "live_status", False):
        from repro.obs.bus import default_bus

        live_bus = default_bus()
        live_bus.enable_live()
    for path in (args.metrics_out, args.profile, args.trace_out):
        parent = os.path.dirname(os.path.abspath(path)) if path else None
        if parent:
            os.makedirs(parent, exist_ok=True)
    _LOG.info("running %s with %s", args.command, config)

    with track_memory(args.track_memory):
        try:
            with profile(args.profile):
                if args.command == "all":
                    for name, runner in EXPERIMENTS.items():
                        print(f"\n### {name} ###")
                        with span(f"experiment.{name}"):
                            runner(config)
                else:
                    with span(f"experiment.{args.command}"):
                        EXPERIMENTS[args.command](config)
        finally:
            if live_bus is not None:
                live_bus.disable_live()

        if args.metrics_out:
            if args.metrics_format == "openmetrics":
                from repro.obs.expose import write_openmetrics

                text = write_openmetrics(args.metrics_out)
                _LOG.info(
                    "openmetrics exposition written to %s (%d lines)",
                    args.metrics_out, text.count("\n"),
                )
            else:
                report = write_run_report(
                    args.metrics_out, command=args.command, config=config
                )
                _LOG.info(
                    "run report written to %s (%d spans, %d counters, "
                    "%d timeline events)",
                    args.metrics_out, len(report["spans"]),
                    len(report["metrics"]["counters"]),
                    len(report["timeline"]["events"]),
                )
    if args.trace_out:
        from repro.obs.export import write_chrome_trace

        document = write_chrome_trace(args.trace_out)
        _LOG.info(
            "chrome trace written to %s (%d events)",
            args.trace_out, len(document["traceEvents"]),
        )
    if args.profile:
        _LOG.info("profile written to %s", args.profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
